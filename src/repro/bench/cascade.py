"""Cascade-stage benchmark: what the two new stages buy.

Two questions, both answered on the corpus and recorded in
``BENCH_cascade.json`` for CI to gate and archive:

* **Field-sensitive clustering** — on the largest corpus program
  (sendmail), does swapping classic Steensgaard for the
  field-sensitive variant shrink the cluster-size distribution
  (p50/p95/max) without making end-to-end analysis slower?  The win
  comes from write-mostly per-field registry cells (the normalizer's
  struct-flattening shape) that classic unification gleefully merges.
* **Cut-shortcut resolution** — on the function-pointer-dense
  ``fp_heavy`` workload, do the Andersen and cut-shortcut stages
  resolve every seeded indirect call site to exactly the generator's
  sampled callee set (:attr:`~repro.bench.synth.SynthProgram.fp_truth`),
  and does the cut-shortcut stage shrink points-to sets at all?

The gate compares machine-independent numbers only (size ratios,
resolution rates); wall-clock is recorded for the table but gated as a
same-machine ratio between the two configurations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.andersen import Andersen
from ..analysis.cutshortcut import CutShortcut
from ..ir import Var
from .corpus import PAPER_TABLE1, build, fp_heavy
from .metrics import format_table

#: Largest corpus program by the paper's pointer count (sendmail).
LARGEST = max(PAPER_TABLE1, key=lambda r: r.pointers).name


def _variant(program, threshold: int, clustering: str,
             cutshortcut: bool, sharing_bound: int) -> Dict[str, Any]:
    # Imported here: repro.core.report pulls in bench.metrics, so a
    # module-level import would close an import cycle through this file.
    from ..core import BootstrapAnalyzer, BootstrapConfig, CascadeConfig
    from ..core.report import size_summary
    config = BootstrapConfig(cascade=CascadeConfig(
        andersen_threshold=threshold, clustering=clustering,
        sharing_bound=sharing_bound, cutshortcut=cutshortcut))
    t0 = time.perf_counter()
    boot = BootstrapAnalyzer(program, config).run()
    cascade_seconds = time.perf_counter() - t0
    boot.analyze_all(backend="simulate")
    end_to_end = time.perf_counter() - t0
    cascade = boot.cascade
    partition_sizes = [len(p) for p in cascade.steensgaard.partitions()]
    cluster_sizes = [c.size for c in cascade.clusters]
    out: Dict[str, Any] = {
        "clustering": clustering,
        "cutshortcut": cutshortcut,
        "partitions": {"count": len(partition_sizes),
                       **size_summary(partition_sizes)},
        "clusters": {"count": len(cluster_sizes),
                     **size_summary(cluster_sizes)},
        "cascade_seconds": cascade_seconds,
        "end_to_end_seconds": end_to_end,
    }
    stats = getattr(cascade.steensgaard, "sharing_stats", None)
    if callable(stats):
        out["sharing"] = stats()
    return out


def _fp_resolution(scale: float) -> Dict[str, Any]:
    sp = fp_heavy(scale=scale)
    program = sp.program
    analyses = {
        "andersen": Andersen(program).run(),
        "cutshortcut": CutShortcut(program).run(),
    }
    out: Dict[str, Any] = {"sites": len(sp.fp_truth)}
    for label, result in analyses.items():
        exact = 0
        sound = 0
        for entry in sp.fp_truth:
            fp = Var(str(entry["site"]))
            resolved = {o.name for o in result.points_to(fp)
                        if isinstance(o, Var)}
            truth = set(entry["targets"])  # type: ignore[arg-type]
            if truth <= resolved:
                sound += 1
            if resolved == truth:
                exact += 1
        n = max(1, len(sp.fp_truth))
        out[label] = {"exact": exact, "sound": sound,
                      "exact_ratio": exact / n, "sound_ratio": sound / n}
    # How much the cut-shortcut rewrite tightens points-to overall.
    anders, cs = analyses["andersen"], analyses["cutshortcut"]
    shrunk = sum(1 for p in program.pointers
                 if cs.points_to(p) < anders.points_to(p))
    out["pointers_shrunk_by_cutshortcut"] = shrunk
    return out


def run_cascade_bench(name: str = LARGEST, scale: float = 0.02,
                      sharing_bound: int = 8,
                      fp_scale: float = 0.05,
                      verbose: bool = False) -> Dict[str, Any]:
    """Measure both new stages; JSON-safe result."""
    sp = build(name, scale=scale)
    program = sp.program
    threshold = max(6, int(60 * scale))
    variants: Dict[str, Any] = {}
    for label, clustering, cut in (
            ("classic", "steensgaard", False),
            ("fs", "steensgaard_fs", False),
            ("fs_cutshortcut", "steensgaard_fs", True)):
        variants[label] = _variant(program, threshold, clustering, cut,
                                   sharing_bound)
        if verbose:
            v = variants[label]
            print(f"  [{name}] {label}: partitions "
                  f"p95={v['partitions']['p95']} max={v['partitions']['max']}"
                  f", clusters p95={v['clusters']['p95']} "
                  f"max={v['clusters']['max']}, "
                  f"{v['end_to_end_seconds']:.2f}s end-to-end",
                  file=sys.stderr)
    fp = _fp_resolution(fp_scale)
    if verbose:
        print(f"  [fp_heavy] {fp['sites']} sites: andersen exact "
              f"{fp['andersen']['exact_ratio']:.0%}, cutshortcut exact "
              f"{fp['cutshortcut']['exact_ratio']:.0%}, "
              f"{fp['pointers_shrunk_by_cutshortcut']} pointer(s) "
              f"tightened", file=sys.stderr)
    classic, fs = variants["classic"], variants["fs"]
    time_ratio = (fs["end_to_end_seconds"] / classic["end_to_end_seconds"]
                  if classic["end_to_end_seconds"] else 1.0)
    return {
        "program": name, "scale": scale, "sharing_bound": sharing_bound,
        "pointers": len(program.pointers),
        "variants": variants,
        "fs_vs_classic_time_ratio": time_ratio,
        "fp_heavy": fp,
    }


def check_gate(current: Dict[str, Any], baseline: Dict[str, Any],
               tolerance: float = 0.2) -> List[str]:
    """Soft regression gate against a committed baseline JSON.

    Three machine-independent checks: the field-sensitive p95 cluster
    size must not exceed the classic one (the stage's raison d'être),
    the fp-heavy resolution rates must not drop below the baseline's
    (minus ``tolerance``), and the fs/classic end-to-end time ratio —
    a same-machine ratio, so comparable across hosts — must not grow
    past the baseline's ratio by more than ``tolerance``.
    """
    failures: List[str] = []
    if current.get("program") != baseline.get("program"):
        failures.append(
            f"program mismatch: current {current.get('program')!r} vs "
            f"baseline {baseline.get('program')!r} (pass matching "
            "--program/--scale to compare)")
        return failures
    variants = current.get("variants", {})
    for section in ("partitions", "clusters"):
        classic = variants.get("classic", {}).get(section, {})
        fs = variants.get("fs", {}).get(section, {})
        if fs.get("p95", 0) > classic.get("p95", 0):
            failures.append(
                f"fs {section} p95 {fs.get('p95')} exceeds classic "
                f"{classic.get('p95')} — field-sensitive clustering "
                "stopped refining")
    for label in ("andersen", "cutshortcut"):
        cur = current.get("fp_heavy", {}).get(label, {})
        base = baseline.get("fp_heavy", {}).get(label, {})
        for key in ("exact_ratio", "sound_ratio"):
            floor = base.get(key, 0.0) * (1.0 - tolerance)
            if cur.get(key, 0.0) < floor:
                failures.append(
                    f"fp_heavy {label} {key}: {cur.get(key, 0.0):.0%} "
                    f"fell below {floor:.0%} (baseline "
                    f"{base.get(key, 0.0):.0%} - {tolerance:.0%})")
    base_ratio = baseline.get("fs_vs_classic_time_ratio")
    cur_ratio = current.get("fs_vs_classic_time_ratio")
    if base_ratio is not None and cur_ratio is not None:
        ceiling = base_ratio * (1.0 + tolerance)
        if cur_ratio > ceiling:
            failures.append(
                f"fs_vs_classic_time_ratio: {cur_ratio:.2f} rose above "
                f"{ceiling:.2f} (baseline {base_ratio:.2f} + "
                f"{tolerance:.0%})")
    return failures


def render(data: Dict[str, Any]) -> str:
    rows = []
    for label, v in data["variants"].items():
        rows.append([label,
                     str(v["partitions"]["count"]),
                     str(v["partitions"]["p95"]),
                     str(v["clusters"]["p50"]),
                     str(v["clusters"]["p95"]),
                     str(v["clusters"]["max"]),
                     f"{v['end_to_end_seconds']:.2f}"])
    table = format_table(
        ["variant", "parts", "part p95", "cl p50", "cl p95", "cl max",
         "end-to-end (s)"], rows,
        title=f"Cascade stages ({data['program']}, scale={data['scale']})")
    fp = data["fp_heavy"]
    return (table + "\n\n"
            f"fp_heavy ({fp['sites']} sites): andersen exact "
            f"{fp['andersen']['exact_ratio']:.0%}, cutshortcut exact "
            f"{fp['cutshortcut']['exact_ratio']:.0%}, "
            f"{fp['pointers_shrunk_by_cutshortcut']} pointer(s) tightened "
            f"by cut-shortcut")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the field-sensitive clustering and "
                    "cut-shortcut cascade stages")
    parser.add_argument("--program", default=LARGEST,
                        help=f"corpus program name (default {LARGEST}, "
                             "the largest)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="program size fraction (default 0.02)")
    parser.add_argument("--fp-scale", type=float, default=0.05,
                        help="fp_heavy workload scale (default 0.05)")
    parser.add_argument("--sharing-bound", type=int, default=8)
    parser.add_argument("--out", default="BENCH_cascade.json",
                        help="output JSON path (default BENCH_cascade.json)")
    parser.add_argument("--gate", metavar="BASELINE",
                        help="compare against a baseline BENCH_cascade.json "
                             "and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional drift from the baseline "
                             "ratios (default 0.2)")
    args = parser.parse_args(argv)
    data = run_cascade_bench(name=args.program, scale=args.scale,
                             sharing_bound=args.sharing_bound,
                             fp_scale=args.fp_scale, verbose=True)
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    if args.gate:
        with open(args.gate) as handle:
            baseline = json.load(handle)
        failures = check_gate(data, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("perf gate: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

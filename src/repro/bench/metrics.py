"""Measurement plumbing shared by the bench harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: Marker mirroring the paper's "> 15min" entries.
TIMEOUT = "TIMEOUT"


@dataclass
class Timed:
    """A measured call: elapsed seconds, or a timeout marker."""

    seconds: Optional[float]
    value: Optional[object] = None

    @property
    def timed_out(self) -> bool:
        return self.seconds is None

    def fmt(self, digits: int = 3) -> str:
        if self.timed_out:
            return TIMEOUT
        return f"{self.seconds:.{digits}f}"


def timed(fn: Callable[[], T]) -> Timed:
    t0 = time.perf_counter()
    value = fn()
    return Timed(seconds=time.perf_counter() - t0, value=value)


def timed_with_budget(fn: Callable[[], T]) -> Timed:
    """Run ``fn``; a raised ``AnalysisBudgetExceeded`` (or TimeoutError
    from the dataflow engine) becomes a timeout marker, exactly like the
    paper's "> 15min" rows."""
    from ..errors import AnalysisBudgetExceeded
    t0 = time.perf_counter()
    try:
        value = fn()
    except (AnalysisBudgetExceeded, TimeoutError):
        return Timed(seconds=None)
    return Timed(seconds=time.perf_counter() - t0, value=value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """A fixed-width text table (also valid Markdown)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(str(c).ljust(widths[i])
                                 for i, c in enumerate(cells)) + " |"

    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append(fmt_row(headers))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(str(c) for c in row))
    return "\n".join(out)


def ascii_histogram(series: Dict[str, Dict[int, int]], width: int = 50,
                    title: str = "") -> str:
    """A textual scatter of size -> frequency per series (Figure 1)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    all_sizes = sorted({s for hist in series.values() for s in hist})
    max_freq = max((f for hist in series.values() for f in hist.values()),
                   default=1)
    markers = {}
    for marker, name in zip("#o*+x", series):
        markers[name] = marker
        lines.append(f"  {marker} = {name}")
    lines.append(f"  {'size':>6} | frequency")
    for size in all_sizes:
        row = []
        for name, hist in series.items():
            freq = hist.get(size, 0)
            if freq:
                bar = markers[name] * max(1, int(freq / max_freq * width))
                row.append(f"{bar} ({freq})")
        lines.append(f"  {size:>6} | " + "   ".join(row))
    return "\n".join(lines)


def ratio(a: Optional[float], b: Optional[float]) -> str:
    """Safe speedup formatting (a over b)."""
    if a is None or b is None or b == 0:
        return "-"
    return f"{a / b:.2f}x"

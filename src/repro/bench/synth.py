"""Deterministic synthetic benchmark programs.

The paper evaluates on Linux drivers, mail agents and servers whose
sources (and 2008 toolchain) are unavailable here, so the harness runs on
synthetic programs engineered to reproduce the *distributional* facts the
paper's results depend on (see DESIGN.md §3):

* pointer-partition size frequencies are heavy-tailed: hundreds of tiny
  Steensgaard partitions plus a few large ones (Figure 1's shape) —
  generated as many small independent "pointer webs" plus one (or more)
  large *hub* web;
* the hub's internal structure controls how much Andersen clustering can
  refine it: layered one-way flows with small fan-in split into many
  small clusters (the ``sendmail`` case: 596 -> 193), while mesh-like
  sharing leaves clusters almost as large as the partition (the
  ``mt-daapd`` case: 89 -> 83, where Andersen clustering is a net loss);
* statements are localized to a few functions per web, so per-cluster
  slices touch only a handful of functions (the locality the paper's
  summarization exploits);
* the call graph is a tree with cross edges and optional recursion, and
  pointers also flow through parameters/returns and function pointers.

Everything is generated from a seeded ``random.Random``; the same config
always yields the identical program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import Program, ProgramBuilder, Var, param_var
from ..ir.builder import FunctionBuilder


@dataclass(frozen=True)
class SynthConfig:
    """Knobs for one synthetic benchmark program."""

    name: str
    pointers: int = 400            # approximate pointer-variable count
    functions: int = 20            # worker functions (plus main)
    kloc: float = 1.0              # reported only (the paper's column 2)
    hub_fractions: Tuple[float, ...] = (0.15,)  # big partitions, as
                                   # fractions of the pointer budget
    overlap: float = 0.2           # 0 = tree-like hub, 1 = full mesh
    web_size_mean: float = 4.0     # small web size (geometric-ish)
    depth: int = 2                 # extra pointer-indirection levels
    lock_count: int = 0            # lock pointers + lock()/unlock() calls
    fp_sites: int = 0              # function-pointer call sites
    field_webs: int = 0            # write-mostly per-field registry webs
    taint_webs: int = 0            # seeded source->...->sink chains
    leak_webs: int = 0             # allocation webs (leaked/freed/escaped)
    deadlock_pairs: int = 0        # two-thread lock pairs (cyclic or not)
    recursion: bool = True
    seed: int = 2008


@dataclass
class SynthProgram:
    """A generated program plus the ground-truth knobs that shaped it."""

    config: SynthConfig
    program: Program
    web_count: int
    hub_sizes: List[int]
    lock_vars: List[Var]
    #: Ground truth for the seeded taint webs: one entry per web with
    #: the source/sink names and whether a sanitizer breaks the chain
    #: (``sanitized`` webs must NOT produce a flow).
    taint_truth: List[Dict[str, object]] = field(default_factory=list)
    #: Ground truth for the allocation webs: one entry per web with the
    #: site label, its variant (leaked / freed / escaped) and whether
    #: the leak checker must flag it.
    leak_truth: List[Dict[str, object]] = field(default_factory=list)
    #: Ground truth for the lock pairs: thread entries, lock objects and
    #: whether their acquisition orders form a cycle.
    deadlock_truth: List[Dict[str, object]] = field(default_factory=list)
    #: Spawned thread entry functions (deadlock pairs register two each).
    thread_entries: List[str] = field(default_factory=list)
    #: Ground truth for function-pointer sites: one entry per site with
    #: the pointer name and the sampled callee set (what a sound
    #: indirect-call resolution must report, and what a precise one
    #: reports exactly).
    fp_truth: List[Dict[str, object]] = field(default_factory=list)


class _Gen:
    def __init__(self, config: SynthConfig) -> None:
        self.cfg = config
        self.rng = random.Random(config.seed)
        self.builder = ProgramBuilder()
        self.fnames = [f"f{i}" for i in range(max(1, config.functions))]
        self.emitters: Dict[str, FunctionBuilder] = {}
        self.pointer_budget = config.pointers
        self.created = 0
        self.web_count = 0
        self.hub_sizes: List[int] = []
        self.lock_vars: List[Var] = []
        self.taint_truth: List[Dict[str, object]] = []
        self.leak_truth: List[Dict[str, object]] = []
        self.deadlock_truth: List[Dict[str, object]] = []
        self.thread_entries: List[str] = []
        self.fp_truth: List[Dict[str, object]] = []
        self._uid = 0

    # -- plumbing ----------------------------------------------------------
    def uid(self) -> int:
        self._uid += 1
        return self._uid

    def em(self, name: str) -> FunctionBuilder:
        if name not in self.emitters:
            fb = FunctionBuilder(self.builder, name, params=())
            self.emitters[name] = fb
        return self.emitters[name]

    def pick_funcs(self, k: int) -> List[str]:
        k = max(1, min(k, len(self.fnames)))
        return self.rng.sample(self.fnames, k)

    # -- web generators ------------------------------------------------------
    def small_web(self) -> int:
        """One small pointer web: a few targets, a few pointers, local to
        1-3 functions.  Returns the number of pointer variables made."""
        rng = self.rng
        size = max(2, min(10, int(rng.expovariate(1.0 / self.cfg.web_size_mean)) + 2))
        funcs = self.pick_funcs(rng.randint(1, 3))
        wid = self.uid()
        n_targets = max(1, size // 3)
        targets = [f"w{wid}t{i}" for i in range(n_targets)]
        pointers = [f"w{wid}p{i}" for i in range(size - n_targets)]
        created = 0
        for t in targets:
            self.builder.global_var(t)
        prev: Optional[str] = None
        for i, p in enumerate(pointers):
            f = self.em(rng.choice(funcs))
            self.builder.global_var(p)
            f.addr(p, rng.choice(targets))
            created += 1
            if prev is not None and rng.random() < 0.7:
                f.copy(rng.choice([p, prev]), rng.choice([prev, p]))
            prev = p
        # Optional extra indirection level.
        if pointers and self.cfg.depth >= 2 and rng.random() < 0.5:
            f = self.em(rng.choice(funcs))
            pp = f"w{wid}pp"
            self.builder.global_var(pp)
            f.addr(pp, rng.choice(pointers))
            if rng.random() < 0.5:
                f.store(pp, rng.choice(pointers))
            else:
                f.load(f"w{wid}l", pp)
            created += 2
        self.web_count += 1
        return created + n_targets

    def hub_web(self, size: int) -> int:
        """One large Steensgaard partition with controllable Andersen
        refinement.

        The hub is ``C`` parallel copy *chains* (each chain's pointers all
        point to the chain's own object, so its Andersen cluster is the
        chain) joined by *bridge* variables that copy from two adjacent
        chain heads: the bridge unifies the chains' pointee classes
        (Steensgaard sees one big partition) while adding only itself to
        each chain's cluster.  ``overlap`` sets the target ratio
        ``max Andersen cluster / max Steensgaard partition``: near 0
        means many short chains (sendmail: clustering refines a lot),
        near 1 means one long chain (mt-daapd: clustering cannot help).
        """
        rng = self.rng
        wid = self.uid()
        chain_len = max(2, int(size * max(0.02, min(1.0, self.cfg.overlap)) * 0.85))
        n_chains = max(1, size // (chain_len + 2))
        funcs = self.pick_funcs(max(2, min(len(self.fnames),
                                           size // 12 + 2)))
        created = 0
        heads: List[str] = []
        for c in range(n_chains):
            obj = f"h{wid}o{c}"
            self.builder.global_var(obj)
            prev = f"h{wid}c{c}v0"
            self.builder.global_var(prev)
            # Chain segments stay within few functions (statement
            # locality, like real code).
            chain_funcs = rng.sample(funcs, min(len(funcs),
                                                rng.randint(1, 3)))
            self.em(rng.choice(chain_funcs)).addr(prev, obj)
            heads.append(prev)
            created += 1
            for i in range(1, chain_len):
                cur = f"h{wid}c{c}v{i}"
                self.builder.global_var(cur)
                self.em(rng.choice(chain_funcs)).copy(cur, prev)
                prev = cur
                created += 1
        for c in range(1, n_chains):
            bridge = f"h{wid}b{c}"
            self.builder.global_var(bridge)
            f = self.em(rng.choice(funcs))
            f.copy(bridge, heads[c - 1])
            f.copy(bridge, heads[c])
            created += 1
        self.hub_sizes.append(created)
        self.web_count += 1
        return created + n_chains

    def field_web(self, index: int) -> int:
        """A write-mostly per-field registry cell, the shape
        ``frontend/normalize.py`` produces for struct-field stores
        (``Store($fld$S$f, src)`` against ``AllocSite("field:S.f")``).

        One heap registry cell collects addresses from several producer
        sites and is almost never read back — the real-code pattern
        (callback tables, sysctl/device registries) where unification
        overshares: classic Steensgaard merges every producer's pointee
        class through the cell, while the field-sensitive variant defers
        the store joins until a load observes the cell.  A minority of
        webs (every fourth) do load the registry, which collapses the
        deferral there — keeping the corpus honest about read-back.
        """
        rng = self.rng
        wid = self.uid()
        funcs = self.pick_funcs(rng.randint(1, 2))
        reg = f"fw{wid}reg"
        self.builder.global_var(reg)
        self.em(rng.choice(funcs)).alloc(reg, f"field:reg.f{wid}")
        n_src = rng.randint(4, 9)
        created = 1
        for i in range(n_src):
            f = self.em(rng.choice(funcs))
            obj, src = f"fw{wid}o{i}", f"fw{wid}s{i}"
            self.builder.global_var(obj)
            self.builder.global_var(src)
            f.addr(src, obj)
            f.store(reg, src)
            created += 2
        if index % 4 == 3:
            self.em(rng.choice(funcs)).load(f"fw{wid}ld", reg)
            created += 1
        self.web_count += 1
        return created

    def lock_web(self, index: int) -> int:
        """A lock pointer guarding a shared counter (drives the race
        detection example and the demand-driven benchmarks)."""
        rng = self.rng
        lock_obj = f"lk{index}_obj"
        lock_ptr = f"lk{index}"
        shared = f"lk{index}_shared"
        for g in (lock_obj, lock_ptr, shared):
            self.builder.global_var(g)
        f = self.em(rng.choice(self.fnames))
        f.addr(lock_ptr, lock_obj)
        f.call("lock", [lock_ptr])
        f.skip(f"touch {shared}")
        f.call("unlock", [lock_ptr])
        self.lock_vars.append(Var(lock_ptr))
        return 2

    _TAINT_SOURCES = ("input", "getenv", "read_input")
    _TAINT_SINKS = ("system", "exec", "eval_query")

    def taint_web(self, index: int) -> int:
        """One seeded source->copy-chain->sink flow across dedicated
        functions called in order from ``main``.

        A few hops move the value through global copies; about half the
        webs additionally route it through memory (``p = &cell; *p = v;
        out = *p``) so the taint engine must consult the points-to
        resolver.  Every third web sanitizes the value right before the
        sink — ground truth says those webs must stay silent.
        """
        rng = self.rng
        wid = self.uid()
        source = self._TAINT_SOURCES[index % len(self._TAINT_SOURCES)]
        sink = self._TAINT_SINKS[index % len(self._TAINT_SINKS)]
        sanitized = index % 3 == 2
        main = self.em("main")
        created = 0

        src_fn = self.em(f"tw{wid}src")
        val = f"tw{wid}v0"
        self.builder.global_var(val)
        src_fn.extern_call(source, [], ret=f"tw{wid}raw")
        src_fn.copy(val, f"tw{wid}raw")
        main.call(f"tw{wid}src")
        prev = val
        created += 1
        for hop in range(1, rng.randint(2, 4)):
            cur = f"tw{wid}v{hop}"
            self.builder.global_var(cur)
            mid = self.em(f"tw{wid}h{hop}")
            mid.copy(cur, prev)
            main.call(f"tw{wid}h{hop}")
            prev = cur
            created += 1
        if rng.random() < 0.5:
            cell, ptr, out = f"tw{wid}cell", f"tw{wid}p", f"tw{wid}out"
            for g in (cell, ptr, out):
                self.builder.global_var(g)
            mem = self.em(f"tw{wid}mem")
            mem.addr(ptr, cell)
            mem.store(ptr, prev)
            mem.load(out, ptr)
            main.call(f"tw{wid}mem")
            prev = out
            created += 3
        sink_fn = self.em(f"tw{wid}sink")
        if sanitized:
            clean = f"tw{wid}clean"
            self.builder.global_var(clean)
            sink_fn.extern_call("sanitize", [prev], ret=clean)
            prev = clean
            created += 1
        sink_fn.extern_call(sink, [prev])
        main.call(f"tw{wid}sink")
        self.taint_truth.append({
            "web": wid, "source": source, "sink": sink,
            "sink_function": f"tw{wid}sink", "sanitized": sanitized,
        })
        self.web_count += 1
        return created

    def leak_web(self, index: int) -> int:
        """One allocation-heavy web called from ``main``, cycling through
        three variants with known ground truth:

        * ``leaked`` — the only reference dies with the helper's frame;
        * ``freed`` — the allocation is freed before the frame dies;
        * ``escaped`` — the allocation is published into a global.
        """
        wid = self.uid()
        variant = ("leaked", "freed", "escaped")[index % 3]
        fname = f"lw{wid}fn"
        label = f"lw{wid}site"
        fn = self.em(fname)
        ptr = f"lw{wid}p"
        fn.alloc(ptr, label)
        created = 1
        if variant == "freed":
            fn.free(ptr)
        elif variant == "escaped":
            keep = f"lw{wid}keep"
            self.builder.global_var(keep)
            fn.copy(keep, ptr)
            created += 1
        self.em("main").call(fname)
        self.leak_truth.append({
            "web": wid, "site": label, "function": fname,
            "variant": variant, "leaked": variant == "leaked",
        })
        self.web_count += 1
        return created

    def deadlock_pair(self, index: int) -> int:
        """Two spawned threads over two locks: even-indexed pairs take
        them in opposite orders (an ABBA cycle, ground truth ``cycle``),
        odd-indexed pairs agree on the order (must stay silent)."""
        wid = self.uid()
        cyclic = index % 2 == 0
        obj_a, obj_b = f"dl{wid}obja", f"dl{wid}objb"
        ptr_a, ptr_b = f"dl{wid}a", f"dl{wid}b"
        for g in (obj_a, obj_b, ptr_a, ptr_b):
            self.builder.global_var(g)
        main = self.em("main")
        main.addr(ptr_a, obj_a)
        main.addr(ptr_b, obj_b)
        t1, t2 = f"dl{wid}t1", f"dl{wid}t2"
        orders = {t1: (ptr_a, ptr_b),
                  t2: (ptr_b, ptr_a) if cyclic else (ptr_a, ptr_b)}
        for tname, (first, second) in orders.items():
            fb = self.em(tname)
            fb.call("lock", [first])
            fb.call("lock", [second])
            fb.call("unlock", [second])
            fb.call("unlock", [first])
            fp = f"dl{wid}fp_{tname}"
            self.builder.global_var(fp)
            main.addr(fp, Var(tname))
            main.extern_call("spawn", [fp])
            main.call(tname)  # threads also run under main's supergraph
            self.thread_entries.append(tname)
        self.lock_vars.extend([Var(ptr_a), Var(ptr_b)])
        self.deadlock_truth.append({
            "pair": wid, "threads": (t1, t2),
            "locks": (obj_a, obj_b), "cycle": cyclic,
        })
        self.web_count += 1
        return 4  # two lock pointers + two function pointers

    def interprocedural_flows(self) -> int:
        """Route some pointers through parameters and returns.

        Every other flow is *identity-style*: a dedicated leaf callee
        (think getter/identity wrapper) returns its first parameter and
        the caller passes a site-local pointer.  A small pool of such
        callees makes several sites share one, so any
        context-insensitive analysis conflates the sites' return values
        through the shared conduits — the pattern the cut-shortcut
        transformation exists to split.  The remaining flows route
        through a global, which no return summary can shortcut
        (heap-tainted), keeping both sides of that distinction in every
        generated program.
        """
        rng = self.rng
        created = 0
        n_flows = max(1, len(self.fnames) // 3)
        id_pool = max(1, n_flows // 3)
        for i in range(n_flows):
            if i % 2:
                callee = f"idw{(i // 2) % id_pool}"
                if callee not in self.emitters:
                    ce = self.em(callee)
                    ce.copy(ce.fn.retval, param_var(callee, 0))
            else:
                callee = rng.choice(self.fnames)
            caller = rng.choice([f for f in self.fnames if f != callee]
                                or self.fnames)
            wid = self.uid()
            tgt, arg, out = f"ip{wid}t", f"ip{wid}a", f"ip{wid}r"
            for g in (tgt, arg, out):
                self.builder.global_var(g)
            ca = self.em(caller)
            ca.addr(arg, tgt)
            if not i % 2:
                ce = self.em(callee)
                ce.copy(f"$ipin{wid}", arg)
                ce.copy(ce.fn.retval, f"$ipin{wid}")
            # caller/callee are random picks, so this edge can close a
            # call cycle; guard it like the cross edges in
            # build_callgraph so every cycle keeps a base case.
            with ca.branch() as br:
                with br.then():
                    ca.call(callee, [arg] if i % 2 else [], ret=out)
            created += 3
        return created

    def build_callgraph(self) -> None:
        """main calls roots; tree edges + cross edges + optional cycle."""
        rng = self.rng
        main = self.em("main")
        order = list(self.fnames)
        rng.shuffle(order)
        roots = order[:max(1, len(order) // 4)]
        for r in roots:
            main.call(r)
        for i, f in enumerate(order):
            fb = self.em(f)
            children = order[i * 2 + 1: i * 2 + 3]
            for c in children:
                fb.call(c)
            if rng.random() < 0.15 and i > 0:
                # Cross edges can target an ancestor and close a call
                # cycle; guard them like the recursion pair below so the
                # cycle has a base case (see that comment).
                with fb.branch() as br:
                    with br.then():
                        fb.call(rng.choice(order[:i]))  # cross edge
        if self.cfg.recursion and len(order) >= 2:
            # Guard the recursive calls with a branch: an unconditional
            # mutual recursion has no base case, so in the supergraph
            # (return edges come from callee exits only) neither exit —
            # nor anything sequenced after a call into the cycle — would
            # ever be reachable.
            for src, dst in ((order[-1], order[-2]),
                             (order[-2], order[-1])):
                fb = self.em(src)
                with fb.branch() as br:
                    with br.then():
                        fb.call(dst)
        # Lock/unlock primitives as tiny leaf functions.
        if self.cfg.lock_count or self.cfg.deadlock_pairs:
            for prim in ("lock", "unlock"):
                fb = FunctionBuilder(self.builder, prim, params=("l",))
                fb.skip(prim)
                self.emitters[prim] = fb

    def run(self) -> SynthProgram:
        cfg = self.cfg
        budget = cfg.pointers
        # Taint webs first: their main-side calls land at the top of
        # main, so bounded concrete execution (the soundness oracle)
        # reaches every seeded web before the branchy worker-function
        # web can exhaust its path budget.
        for i in range(cfg.taint_webs):
            budget -= self.taint_web(i)
        # Leak webs and deadlock pairs also emit main-side calls early,
        # for the same oracle-path-budget reason.
        for i in range(cfg.leak_webs):
            budget -= self.leak_web(i)
        for i in range(cfg.deadlock_pairs):
            budget -= self.deadlock_pair(i)
        self.build_callgraph()
        for frac in cfg.hub_fractions:
            size = max(8, int(cfg.pointers * frac))
            budget -= self.hub_web(size)
        for i in range(cfg.field_webs):
            budget -= self.field_web(i)
        for i in range(cfg.lock_count):
            budget -= self.lock_web(i)
        budget -= self.interprocedural_flows()
        while budget > 0:
            budget -= self.small_web()
        # Function pointer sites.
        if cfg.fp_sites and len(self.fnames) >= 2:
            rng = self.rng
            for i in range(cfg.fp_sites):
                caller_name = rng.choice(self.fnames)
                caller = self.em(caller_name)
                fp = f"fp{i}"
                self.builder.global_var(fp)
                targets = rng.sample(self.fnames, min(2, len(self.fnames)))
                for target in targets:
                    caller.addr(fp, Var(target))
                caller.call_indirect(fp)
                self.fp_truth.append({
                    "site": fp, "caller": caller_name,
                    "targets": sorted(targets),
                })
        for name, fb in self.emitters.items():
            self.builder._functions[name] = fb.finish()
        program = self.builder.build(entry="main")
        if cfg.fp_sites:
            from ..analysis.steensgaard import Steensgaard
            from ..ir import resolve_indirect_calls
            pts = Steensgaard(program).run()
            resolve_indirect_calls(program, pts.points_to)
        return SynthProgram(config=cfg, program=program,
                            web_count=self.web_count,
                            hub_sizes=self.hub_sizes,
                            lock_vars=self.lock_vars,
                            taint_truth=self.taint_truth,
                            leak_truth=self.leak_truth,
                            deadlock_truth=self.deadlock_truth,
                            thread_entries=self.thread_entries,
                            fp_truth=self.fp_truth)


def generate(config: SynthConfig) -> SynthProgram:
    """Generate one deterministic synthetic program."""
    return _Gen(config).run()


def generate_source(config: SynthConfig) -> str:
    """A mini-C rendering of a (smaller) synthetic program, used to
    exercise the full frontend path in examples and tests."""
    rng = random.Random(config.seed)
    n_webs = max(2, config.pointers // 8)
    lines: List[str] = [f"/* synthetic benchmark: {config.name} */"]
    decls: List[str] = []
    funcs: List[str] = []
    web_fns: List[str] = []
    for w in range(n_webs):
        size = max(2, min(6, int(rng.expovariate(1.0 / config.web_size_mean)) + 2))
        targets = [f"w{w}t{i}" for i in range(max(1, size // 3))]
        ptrs = [f"w{w}p{i}" for i in range(size)]
        decls.append("int " + ", ".join(targets) + ";")
        decls.append("int " + ", ".join("*" + p for p in ptrs) + ";")
        body = []
        for i, p in enumerate(ptrs):
            body.append(f"    {p} = &{rng.choice(targets)};")
            if i:
                body.append(f"    {p} = {ptrs[i - 1]};")
        fn = f"web{w}"
        web_fns.append(fn)
        funcs.append(f"void {fn}(void) {{\n" + "\n".join(body) + "\n}")
    calls = "\n".join(f"    web{w}();" for w in range(n_webs))
    funcs.append(f"int main() {{\n{calls}\n    return 0;\n}}")
    return "\n".join(lines + decls + funcs) + "\n"

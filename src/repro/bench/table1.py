"""Table 1 harness: FSCS alias analysis without clustering vs. with
Steensgaard clustering vs. with Andersen clustering.

For every corpus program this measures, like the paper:

* column 4 — Steensgaard partitioning time;
* column 5 — Andersen clustering time (refining large partitions on
  their slices);
* column 6 — FSCS summary construction over the *whole* program, no
  clustering (with a step budget standing in for the paper's 15-minute
  timeout);
* columns 7-9 — cluster count, max cluster size and simulated 5-way
  parallel FSCS time when clustering stops at Steensgaard partitions;
* columns 10-12 — the same with Andersen clustering of partitions above
  the (scaled) Andersen threshold.

Run ``python -m repro.bench.table1 --help`` for the CLI.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.fscs import whole_program_fscs
from ..analysis.steensgaard import Steensgaard
from ..core.bootstrap import BootstrapConfig, BootstrapResult
from ..core.cascade import CascadeConfig, run_cascade
from ..ir import Program
from .corpus import PAPER_BY_NAME, PAPER_TABLE1, PaperRow, corpus_configs
from .metrics import TIMEOUT, Timed, format_csv, format_table, ratio, timed, \
    timed_with_budget
from .synth import SynthConfig, generate


@dataclass
class Table1Row:
    """Measured results for one program."""

    name: str
    kloc: float
    pointers: int
    t_partition: float
    t_cluster: float
    t_nocluster: Optional[float]   # None == budget exceeded (paper: >15min)
    steens_clusters: int
    steens_max: int
    t_steens: float
    andersen_clusters: int
    andersen_max: int
    t_andersen: float
    nocluster_ran: bool = True

    def cells(self) -> List[str]:
        def f(x: Optional[float]) -> str:
            return TIMEOUT if x is None else f"{x:.3f}"
        nocluster = f(self.t_nocluster) if self.nocluster_ran else "-"
        return [self.name, f"{self.kloc:g}", str(self.pointers),
                f(self.t_partition), f(self.t_cluster), nocluster,
                str(self.steens_clusters), str(self.steens_max),
                f(self.t_steens),
                str(self.andersen_clusters), str(self.andersen_max),
                f(self.t_andersen)]


HEADERS = ["example", "KLOC", "#ptr", "t_part", "t_clust", "t_noclust",
           "#cl(S)", "max(S)", "t(S)", "#cl(A)", "max(A)", "t(A)"]


def measure_program(program: Program, name: str, kloc: float,
                    andersen_threshold: int,
                    nocluster_budget: Optional[int] = 300_000,
                    cluster_budget: Optional[int] = 500_000,
                    nocluster_timeout: float = 60.0,
                    parts: int = 5,
                    run_nocluster: bool = True) -> Table1Row:
    """All Table 1 measurements for one program."""
    n_pointers = len(program.pointers)

    t_part = timed(lambda: Steensgaard(program).run())
    steens = t_part.value

    cascade_a = timed(lambda: run_cascade(
        program, CascadeConfig(andersen_threshold=andersen_threshold),
        steens=steens))

    # Column 6: no clustering at all.
    t_nocluster: Optional[float] = None
    if run_nocluster:
        measured = timed_with_budget(
            lambda: whole_program_fscs(
                program, budget=nocluster_budget,
                max_fsci_iterations=nocluster_budget,
                timeout_seconds=nocluster_timeout).analyze())
        t_nocluster = measured.seconds

    # Columns 7-9: Steensgaard clustering only.
    cascade_s = run_cascade(
        program, CascadeConfig(refine_with_andersen=False), steens=steens)
    result_s = BootstrapResult(program, cascade_s,
                               BootstrapConfig(parts=parts,
                                               fscs_budget=cluster_budget))
    report_s = result_s.analyze_all()

    # Columns 10-12: Andersen clustering of large partitions.
    result_a = BootstrapResult(program, cascade_a.value,
                               BootstrapConfig(parts=parts,
                                               fscs_budget=cluster_budget))
    report_a = result_a.analyze_all()

    return Table1Row(
        name=name, kloc=kloc, pointers=n_pointers,
        t_partition=t_part.seconds,
        t_cluster=cascade_a.value.clustering_time,
        t_nocluster=t_nocluster,
        nocluster_ran=run_nocluster,
        steens_clusters=len(cascade_s.clusters),
        steens_max=cascade_s.max_cluster_size(),
        t_steens=report_s.max_part_time,
        andersen_clusters=len(cascade_a.value.clusters),
        andersen_max=cascade_a.value.max_cluster_size(),
        t_andersen=report_a.max_part_time,
    )


def run_table1(scale: float = 0.05,
               names: Optional[Sequence[str]] = None,
               nocluster_budget: int = 300_000,
               nocluster_timeout: float = 60.0,
               parts: int = 5,
               run_nocluster: bool = True,
               verbose: bool = False) -> List[Table1Row]:
    """Measure every requested corpus program."""
    configs = corpus_configs(scale=scale, names=list(names) if names else None)
    threshold = max(6, int(60 * scale))
    rows: List[Table1Row] = []
    for cfg in configs:
        if verbose:
            print(f"  [{cfg.name}] generating (~{cfg.pointers} pointers)...",
                  file=sys.stderr)
        sp = generate(cfg)
        row = measure_program(sp.program, cfg.name, cfg.kloc,
                              andersen_threshold=threshold,
                              nocluster_budget=nocluster_budget,
                              nocluster_timeout=nocluster_timeout,
                              parts=parts, run_nocluster=run_nocluster)
        rows.append(row)
        if verbose:
            print("  " + " ".join(row.cells()), file=sys.stderr)
    return rows


def paper_reference_table() -> str:
    rows = [[r.name, f"{r.kloc:g}", str(r.pointers),
             TIMEOUT if r.time_nocluster is None else f"{r.time_nocluster:g}",
             str(r.steens_clusters), str(r.steens_max), f"{r.time_steens:g}",
             str(r.andersen_clusters), str(r.andersen_max),
             f"{r.time_andersen:g}"]
            for r in PAPER_TABLE1]
    return format_table(
        ["example", "KLOC", "#ptr", "t_noclust", "#cl(S)", "max(S)",
         "t(S)", "#cl(A)", "max(A)", "t(A)"],
        rows, title="Paper Table 1 (reference)")


def shape_report(rows: List[Table1Row]) -> str:
    """The qualitative comparisons EXPERIMENTS.md cares about."""
    lines = ["Shape checks against the paper:"]
    for row in rows:
        paper = PAPER_BY_NAME.get(row.name)
        checks = []
        if not row.nocluster_ran:
            pass
        elif row.t_nocluster is None:
            checks.append("no-clustering TIMED OUT (clustered runs did not)")
        elif row.t_steens and row.t_nocluster:
            checks.append(
                f"clustering speedup {ratio(row.t_nocluster, row.t_steens)}")
        if paper is not None and paper.steens_max:
            paper_ratio = paper.andersen_max / paper.steens_max
            ours = (row.andersen_max / row.steens_max
                    if row.steens_max else 1.0)
            checks.append(f"max-cluster shrink ours {ours:.2f} "
                          f"vs paper {paper_ratio:.2f}")
        lines.append(f"  {row.name}: " + "; ".join(checks))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Table 1 on the synthetic corpus")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="program size as a fraction of the paper's "
                             "pointer counts (default 0.05)")
    parser.add_argument("--programs", type=str, default=None,
                        help="comma-separated subset of program names")
    parser.add_argument("--parts", type=int, default=5,
                        help="simulated parallel machines (paper: 5)")
    parser.add_argument("--budget", type=int, default=300_000,
                        help="step budget standing in for the 15min timeout")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="wall-clock cap (seconds) for the unclustered "
                             "baseline (the paper used 15 minutes)")
    parser.add_argument("--skip-nocluster", action="store_true",
                        help="skip the slow unclustered baseline")
    parser.add_argument("--csv", action="store_true", help="emit CSV")
    parser.add_argument("--paper", action="store_true",
                        help="also print the paper's reference table")
    args = parser.parse_args(argv)
    names = args.programs.split(",") if args.programs else None
    rows = run_table1(scale=args.scale, names=names,
                      nocluster_budget=args.budget,
                      nocluster_timeout=args.timeout, parts=args.parts,
                      run_nocluster=not args.skip_nocluster, verbose=True)
    cells = [r.cells() for r in rows]
    if args.csv:
        print(format_csv(HEADERS, cells))
    else:
        print(format_table(HEADERS, cells,
                           title=f"Table 1 (measured, scale={args.scale})"))
        print()
        print(shape_report(rows))
    if args.paper:
        print()
        print(paper_reference_table())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Solver-kernel benchmark: bitmask kernels vs frozenset reference.

PR 7 moved the Andersen worklist and the FSCI transfer functions onto
int-bitmask kernels (:mod:`repro.analysis.kernel`) and interned the
cluster-shipping payload (wire format, version 2).  This harness proves
the speedup is real and keeps it from rotting:

* **andersen** — cold inclusion-based solve of the whole program,
  kernel vs reference backend, results compared pointer-for-pointer.
* **fsci** — cold whole-program flow-sensitive solve (the expensive
  stage; per-location abstract states are where masks beat frozensets),
  kernel vs reference, identical iteration counts and points-to
  summaries required.
* **payload** — total serialized bytes of every bootstrap cluster
  payload in the legacy inline format (version 1) vs the interned wire
  format (version 2).

Results go to ``BENCH_kernel.json``.  ``--gate`` re-runs the solver
stages and fails if the kernel's *relative* cost regressed more than
``--tolerance`` (default 20%) against the checked-in baseline.  The
gate compares ``kernel_time / reference_time`` ratios rather than raw
seconds: both runs share the machine, so the ratio is stable across CI
hardware while absolute wall-clock is not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, Optional, Sequence

from ..analysis import FSCI, Andersen
from ..core import BootstrapAnalyzer, BootstrapConfig, CascadeConfig
from ..core.shipping import build_payload
from ..ir import CallGraph
from .corpus import PAPER_TABLE1, build
from .metrics import format_table

#: Largest corpus program by the paper's pointer count (sendmail).
LARGEST = max(PAPER_TABLE1, key=lambda r: r.pointers).name

#: The PR's acceptance floor for the cold whole-program solve.
TARGET_SPEEDUP = 5.0


def _payload_bytes(payload: Dict[str, Any]) -> int:
    return len(json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8"))


def run_kernel_bench(name: str = LARGEST, scale: float = 0.008,
                     threshold: Optional[int] = None,
                     skip_payload: bool = False,
                     verbose: bool = False) -> Dict[str, Any]:
    """Measure kernel vs reference solver stages; JSON-safe result."""
    program = build(name, scale=scale).program
    if threshold is None:
        threshold = max(6, int(60 * scale))
    if verbose:
        print(f"  [{name}] scale={scale}: {len(program.pointers)} pointers, "
              f"{len(program.objects)} objects", file=sys.stderr)

    stages: Dict[str, Dict[str, Any]] = {}

    t0 = time.perf_counter()
    a_kernel = Andersen(program, use_kernel=True).run()
    t_ak = time.perf_counter() - t0
    t0 = time.perf_counter()
    a_ref = Andersen(program, use_kernel=False).run()
    t_ar = time.perf_counter() - t0
    identical = all(a_kernel.points_to(p) == a_ref.points_to(p)
                    for p in program.pointers)
    stages["andersen"] = {
        "kernel_time": t_ak, "reference_time": t_ar,
        "speedup": t_ar / t_ak if t_ak else 0.0,
        "identical": identical,
    }
    if verbose:
        print(f"  andersen: kernel {t_ak:.2f}s vs reference {t_ar:.2f}s "
              f"({stages['andersen']['speedup']:.2f}x, "
              f"identical={identical})", file=sys.stderr)

    t0 = time.perf_counter()
    f_kernel = FSCI(program, use_kernel=True).run()
    t_fk = time.perf_counter() - t0
    t0 = time.perf_counter()
    f_ref = FSCI(program, use_kernel=False).run()
    t_fr = time.perf_counter() - t0
    identical = (f_kernel.iterations == f_ref.iterations
                 and all(f_kernel.points_to(p) == f_ref.points_to(p)
                         for p in program.pointers))
    stages["fsci"] = {
        "kernel_time": t_fk, "reference_time": t_fr,
        "speedup": t_fr / t_fk if t_fk else 0.0,
        "iterations": f_kernel.iterations,
        "identical": identical,
    }
    if verbose:
        print(f"  fsci: kernel {t_fk:.2f}s vs reference {t_fr:.2f}s "
              f"({stages['fsci']['speedup']:.2f}x, "
              f"identical={identical})", file=sys.stderr)

    cold = {
        "kernel_time": t_ak + t_fk,
        "reference_time": t_ar + t_fr,
        "speedup": (t_ar + t_fr) / (t_ak + t_fk) if t_ak + t_fk else 0.0,
        "target_speedup": TARGET_SPEEDUP,
    }

    payload: Dict[str, Any] = {"skipped": True}
    if not skip_payload:
        config = BootstrapConfig(
            cascade=CascadeConfig(andersen_threshold=threshold))
        boot = BootstrapAnalyzer(program, config).run()
        callgraph = CallGraph(program)
        v1 = v2 = 0
        cache: Dict[Any, Any] = {}
        for cluster in boot.clusters:
            v1 += _payload_bytes(build_payload(
                program, cluster, callgraph=callgraph,
                subprogram_cache=cache, compact=False))
            v2 += _payload_bytes(build_payload(
                program, cluster, callgraph=callgraph,
                subprogram_cache=cache))
        payload = {
            "clusters": len(boot.clusters),
            "v1_bytes": v1, "v2_bytes": v2,
            "ratio": v1 / v2 if v2 else 0.0,
        }
        if verbose:
            print(f"  payload: v1 {v1} B vs v2 {v2} B "
                  f"({payload['ratio']:.2f}x smaller)", file=sys.stderr)

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return {"program": name, "scale": scale,
            "pointers": len(program.pointers),
            "objects": len(program.objects),
            "cpus": cpus, "stages": stages, "cold": cold,
            "payload": payload}


def check_gate(current: Dict[str, Any], baseline: Dict[str, Any],
               tolerance: float = 0.2) -> Sequence[str]:
    """Failures of the soft perf gate, empty when the run is healthy.

    The gate is relative: the kernel/reference time *ratio* must not
    grow more than ``tolerance`` beyond the baseline's, and every stage
    must still produce results identical to the reference backend.
    """
    failures = []
    for key in ("andersen", "fsci"):
        stage = current["stages"].get(key, {})
        if not stage.get("identical", False):
            failures.append(f"{key}: kernel and reference results differ")
    cur, base = current["cold"], baseline["cold"]
    cur_ratio = cur["kernel_time"] / cur["reference_time"]
    base_ratio = base["kernel_time"] / base["reference_time"]
    if cur_ratio > base_ratio * (1.0 + tolerance):
        failures.append(
            f"cold solver cost regressed: kernel/reference ratio "
            f"{cur_ratio:.3f} vs baseline {base_ratio:.3f} "
            f"(+{(cur_ratio / base_ratio - 1.0):.0%}, "
            f"tolerance {tolerance:.0%})")
    if cur["speedup"] < TARGET_SPEEDUP:
        failures.append(
            f"cold solver speedup {cur['speedup']:.2f}x is below the "
            f"{TARGET_SPEEDUP:.0f}x floor")
    return failures


def render(data: Dict[str, Any]) -> str:
    rows = []
    for key in ("andersen", "fsci"):
        s = data["stages"][key]
        rows.append([key, f"{s['kernel_time']:.2f}",
                     f"{s['reference_time']:.2f}", f"{s['speedup']:.2f}x",
                     "yes" if s["identical"] else "NO"])
    cold = data["cold"]
    rows.append(["cold solve", f"{cold['kernel_time']:.2f}",
                 f"{cold['reference_time']:.2f}",
                 f"{cold['speedup']:.2f}x", ""])
    table = format_table(
        ["stage", "kernel (s)", "reference (s)", "speedup", "identical"],
        rows,
        title=f"Solver kernels ({data['program']}, scale={data['scale']}, "
              f"{data['pointers']} pointers, {data['cpus']} cpu(s))")
    payload = data["payload"]
    if payload.get("skipped"):
        return table
    return (table + "\n\n"
            f"payload: v2 interned {payload['v2_bytes']} B vs "
            f"v1 inline {payload['v1_bytes']} B "
            f"({payload['ratio']:.2f}x smaller, "
            f"{payload['clusters']} clusters)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile bitmask solver kernels against the "
                    "frozenset reference backends")
    parser.add_argument("--program", default=LARGEST,
                        help=f"corpus program name (default {LARGEST}, "
                             "the largest)")
    parser.add_argument("--scale", type=float, default=0.008,
                        help="program size fraction (default 0.008)")
    parser.add_argument("--skip-payload", action="store_true",
                        help="skip the payload-size stage (faster)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="output JSON path (default BENCH_kernel.json)")
    parser.add_argument("--gate", metavar="BASELINE", default=None,
                        help="compare against a checked-in baseline JSON; "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="gate tolerance on the kernel/reference time "
                             "ratio (default 0.2 = 20%%)")
    args = parser.parse_args(argv)
    data = run_kernel_bench(name=args.program, scale=args.scale,
                            skip_payload=args.skip_payload, verbose=True)
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    if args.gate:
        with open(args.gate) as handle:
            baseline = json.load(handle)
        failures = check_gate(data, baseline, tolerance=args.tolerance)
        if failures:
            for f in failures:
                print(f"GATE FAIL: {f}", file=sys.stderr)
            return 1
        print("perf gate: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

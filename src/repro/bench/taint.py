"""Taint-analysis benchmark: demand-scoped vs. whole-program propagation.

The taint checker rides the paper's bootstrapped cascade: the engine
only needs alias facts for pointers taint actually moves through, so the
demand loop selects those pointers' clusters and runs one *sliced* FSCI
over their union instead of tracking every pointer in the program.  This
harness quantifies the saving on a synthetic corpus with seeded
source->sink webs (``SynthConfig.taint_webs``):

* **demand**: :func:`repro.checkers.run_taint` — the shipping
  configuration (demand loop + sliced FSCI resolver);
* **whole**: the same engine with *every* cluster selected and every
  pointer tracked — what a checker without cluster selection would pay.

Both modes must report exactly the same flows (the demand loop is an
optimization, not an approximation), and both are scored against the
generator's ground truth: every unsanitized web must be reported,
every sanitized web must stay silent.

Results go to ``BENCH_taint.json`` so CI can archive them next to
``BENCH_parallel.json`` and ``BENCH_server.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Set

from .metrics import format_table
from .synth import SynthConfig, SynthProgram, generate


def _ground_truth_score(sp: SynthProgram,
                        sink_functions: Set[str]) -> Dict[str, Any]:
    expected = {t["sink_function"] for t in sp.taint_truth
                if not t["sanitized"]}
    sanitized = {t["sink_function"] for t in sp.taint_truth
                 if t["sanitized"]}
    return {
        "expected": len(expected),
        "detected": len(expected & sink_functions),
        "missed": sorted(expected - sink_functions),
        "sanitized_webs": len(sanitized),
        "sanitized_leaks": sorted(sink_functions & sanitized),
    }


def _whole_program_run(program, spec, result):
    """One engine run with every cluster selected and every pointer
    tracked: the no-demand baseline."""
    from ..analysis.taint import TaintEngine
    from ..checkers.base import CheckerContext
    from ..checkers.taint import _make_resolver

    ctx = CheckerContext(program, result)
    fsci, selection = ctx.demand_fsci(frozenset(program.pointers))
    tracked = set(program.pointers)
    for cluster in selection.selected:
        tracked |= cluster.slice.vp
    engine = TaintEngine(program, spec, _make_resolver(fsci, tracked),
                         callgraph=result.callgraph)
    return engine.run(), selection


def run_taint_bench(pointers: int = 160, taint_webs: int = 8,
                    seed: int = 2008, repeats: int = 3) -> Dict[str, Any]:
    """Measure both modes on one synthetic program; returns a JSON-safe
    result dict."""
    from ..analysis.taint import TaintSpec
    from ..checkers import run_taint
    from ..core import BootstrapAnalyzer

    sp = generate(SynthConfig(name="taint-bench", pointers=pointers,
                              taint_webs=taint_webs, seed=seed))
    program = sp.program
    spec = TaintSpec.default()

    t0 = time.perf_counter()
    result = BootstrapAnalyzer(program).run()
    bootstrap_seconds = time.perf_counter() - t0

    demand_times: List[float] = []
    for _ in range(repeats):
        t1 = time.perf_counter()
        demand_run = run_taint(program, spec=spec, result=result)
        demand_times.append(time.perf_counter() - t1)

    whole_times: List[float] = []
    for _ in range(repeats):
        t2 = time.perf_counter()
        whole_report, whole_selection = _whole_program_run(
            program, spec, result)
        whole_times.append(time.perf_counter() - t2)

    demand_keys = sorted(f.key() for f in demand_run.flows)
    whole_keys = sorted(f.key() for f in whole_report.flows)
    demand_seconds = min(demand_times)
    whole_seconds = min(whole_times)
    stats = demand_run.stats
    return {
        "pointers": len(program.pointers),
        "taint_webs": taint_webs,
        "repeats": repeats,
        "bootstrap_seconds": bootstrap_seconds,
        "demand": {
            "seconds": demand_seconds,
            "flows": len(demand_keys),
            "rounds": demand_run.rounds,
            "clusters_selected": stats.clusters_selected,
            "clusters_total": stats.clusters_total,
            "pointers_tracked": stats.pointers_selected,
            "pointers_total": stats.pointers_total,
        },
        "whole": {
            "seconds": whole_seconds,
            "flows": len(whole_keys),
            "clusters_selected": len(whole_selection.selected),
        },
        "flows_identical": demand_keys == whole_keys,
        "speedup": (whole_seconds / demand_seconds
                    if demand_seconds else 0.0),
        "ground_truth": _ground_truth_score(
            sp, {f.sink_loc.function for f in demand_run.flows}),
    }


def render(data: Dict[str, Any]) -> str:
    demand, whole = data["demand"], data["whole"]
    rows = [
        ["demand-scoped",
         f"{demand['seconds'] * 1000:.1f}",
         f"{demand['clusters_selected']}/{demand['clusters_total']}",
         str(demand["flows"])],
        ["whole-program",
         f"{whole['seconds'] * 1000:.1f}",
         f"{whole['clusters_selected']}/{demand['clusters_total']}",
         str(whole["flows"])],
    ]
    table = format_table(
        ["mode", "time (ms)", "clusters", "flows"], rows,
        title=f"Taint propagation ({data['pointers']} pointers, "
              f"{data['taint_webs']} seeded webs)")
    truth = data["ground_truth"]
    return (table + "\n\n"
            f"demand loop: {demand['rounds']} round(s), tracked "
            f"{demand['pointers_tracked']}/{demand['pointers_total']} "
            f"pointers; {data['speedup']:.1f}x vs whole-program; "
            f"flows identical: {data['flows_identical']}; ground truth "
            f"{truth['detected']}/{truth['expected']} detected, "
            f"{len(truth['sanitized_leaks'])} sanitized leak(s)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare demand-scoped vs whole-program taint "
                    "propagation on a synthetic corpus")
    parser.add_argument("--pointers", type=int, default=160,
                        help="synthetic program size (default 160)")
    parser.add_argument("--webs", type=int, default=8,
                        help="seeded taint webs (default 8)")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--out", default="BENCH_taint.json",
                        help="output JSON path (default BENCH_taint.json)")
    args = parser.parse_args(argv)
    data = run_taint_bench(pointers=args.pointers, taint_webs=args.webs,
                           seed=args.seed, repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    if not data["flows_identical"] or data["ground_truth"]["missed"] \
            or data["ground_truth"]["sanitized_leaks"]:
        print("MISMATCH: demand/whole disagree or ground truth violated")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

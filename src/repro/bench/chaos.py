"""Chaos soak: network faults, a coordinator kill, and four invariants.

The fleet's resilience story (PR 8's breaker/reroute ladder, this PR's
deadlines, hedging and journal) makes promises that individual unit
tests can only check one at a time.  This harness checks them *under
composition*: a two-worker fleet whose worker links run through
:class:`~repro.core.faults.ChaosProxy` instances is driven through a
deterministic schedule of connection-level faults — delay, garble,
mid-response drop, blackhole — while a warm query load runs with
per-request deadlines, and then the coordinator itself is SIGKILLed
mid-load and restarted from its journal.

Invariants (all machine-independent — no throughput floors):

* **soundness** — every successful answer, after stripping the fleet
  envelope, is bit-identical to the no-fault single-daemon canon unless
  it carries explicit degraded-precision warnings.  Zero exceptions:
  corruption on the wire must be detected (rerouted), never served.
* **no hangs** — every request completes (answer or structured
  ``DEADLINE_EXCEEDED`` shed) within its deadline plus a grace window;
  nothing waits on a dead link forever.
* **convergence** — after the last fault clears, the fleet returns to
  100% clean untagged answers within one breaker ``reset_timeout``
  (plus probe/measurement slack), i.e. healing is bounded, not lucky.
* **hedging discipline** — hedges fire under the delay fault but stay
  under the configured rate cap, and the hedged-phase p99 latency is
  recorded so tail-latency regressions are visible in the artifact.
* **recovery** — the restarted coordinator recovers its served files
  and query weights from the journal, and a full post-restart sweep is
  bit-identical to the uninterrupted canon.

Results go to ``BENCH_chaos.json``; ``--check`` turns the invariants
into a gate that exits 1 on failure (the CI ``chaos-smoke`` job).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.faults import ChaosProxy, NetFault
from ..server import protocol
from ..server.client import ServerClient, wait_for_server
from ..fleet.worker import RESPONSE_LIMIT, LocalWorker
from .fleet import (_blast, _canonical, _corpus_units, _query_set,
                    _repro_env)
from .synth import generate_source

#: Per-request deadline during chaos rounds (seconds).  Generous enough
#: that warm queries complete even through a fault (worker timeout +
#: reroute), so a shed signals a real overload, not a tight budget.
DEADLINE_S = 8.0

#: Grace on top of the deadline before a completion counts as a hang:
#: the last hop's call timeout carries a small grace (+0.05s) past the
#: deadline, and the response still has to travel back.
HANG_GRACE_S = 2.0

#: One soak pass: (round name, proxy index, fault).  Both workers see
#: every fault kind; the order is fixed, so runs are comparable.
SCHEDULE: Sequence[Tuple[str, int, NetFault]] = (
    ("delay", 0, NetFault("delay", duration=0.2)),
    ("garble", 1, NetFault("garble")),
    ("drop", 0, NetFault("drop", after_bytes=64)),
    ("blackhole", 1, NetFault("blackhole")),
    ("delay", 1, NetFault("delay", duration=0.2)),
    ("garble", 0, NetFault("garble")),
    ("drop", 1, NetFault("drop", after_bytes=64)),
    ("blackhole", 0, NetFault("blackhole")),
)

_FLEET_LISTEN_RE = re.compile(r"listening on tcp:[0-9.]+:(\d+)")


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------

def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_coordinator(port: int, worker_ports: Sequence[int],
                       cache: str, journal: str,
                       worker_timeout: float,
                       breaker_reset: float) -> Any:
    """A ``repro fleet serve`` subprocess fronting the given (proxied)
    worker ports, journaling to ``journal``, hedging enabled."""
    cmd = [sys.executable, "-u", "-m", "repro", "fleet", "serve",
           "--port", str(port), "--workers", "0", "--cache", cache,
           "--journal", journal, "--hedge",
           "--worker-timeout", str(worker_timeout),
           "--breaker-reset", str(breaker_reset)]
    for wport in worker_ports:
        cmd += ["--worker", f"127.0.0.1:{wport}"]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, env=_repro_env(),
                            text=True)
    assert proc.stdout is not None
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"coordinator exited with {proc.returncode} "
                    "before listening")
            continue
        if _FLEET_LISTEN_RE.search(line):
            threading.Thread(target=proc.stdout.read,
                             daemon=True).start()
            return proc
    proc.kill()
    raise RuntimeError("coordinator did not report a port")


# ----------------------------------------------------------------------
# load generator: deadlines, reconnect-with-backoff, per-request timing
# ----------------------------------------------------------------------

async def _chaos_conn(host: str, port: int,
                      frames: "deque[Tuple[int, bytes]]",
                      out: List[Optional[bytes]],
                      done_at: List[Optional[float]],
                      reconnect_budget: float) -> None:
    """One pipelined client connection that rides out coordinator
    restarts: a lost connection is reopened with exponential backoff
    and the in-flight (idempotent) query resent — the same contract as
    :class:`~repro.server.client.ServerClient`, asyncio-side."""
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None

    async def connect() -> None:
        nonlocal reader, writer
        backoff = 0.05
        give_up = time.monotonic() + reconnect_budget
        while True:
            try:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=RESPONSE_LIMIT)
                return
            except OSError:
                if time.monotonic() > give_up:
                    raise
                await asyncio.sleep(backoff)
                backoff = min(1.0, backoff * 2)

    await connect()
    try:
        while True:
            try:
                idx, frame = frames.popleft()
            except IndexError:
                return
            while True:
                try:
                    assert reader is not None and writer is not None
                    writer.write(frame)
                    await writer.drain()
                    line = await reader.readline()
                    if not line:
                        raise ConnectionResetError("eof")
                    break
                except OSError:
                    if writer is not None:
                        writer.close()
                    await connect()
            out[idx] = line
            done_at[idx] = time.monotonic()
    finally:
        if writer is not None:
            writer.close()


async def _soak_blast_async(port: int, requests: List[Dict[str, Any]],
                            concurrency: int, deadline_s: float,
                            reconnect_budget: float
                            ) -> Tuple[List[Optional[bytes]],
                                       List[Optional[float]], int]:
    now = time.time()
    frames: "deque[Tuple[int, bytes]]" = deque(
        (i, protocol.encode({**r, "deadline": now + deadline_s}))
        for i, r in enumerate(requests))
    out: List[Optional[bytes]] = [None] * len(requests)
    done_at: List[Optional[float]] = [None] * len(requests)
    conns = [_chaos_conn("127.0.0.1", port, frames, out, done_at,
                         reconnect_budget)
             for _ in range(max(1, min(concurrency, len(requests))))]
    # The watchdog is the hang detector of last resort: the whole round
    # must finish within every request's deadline plus grace, or the
    # still-missing responses are hangs by definition.
    budget = deadline_s + HANG_GRACE_S + reconnect_budget
    try:
        await asyncio.wait_for(asyncio.gather(*conns), timeout=budget)
    except (asyncio.TimeoutError, OSError):
        pass
    hangs = sum(1 for line in out if line is None)
    return out, done_at, hangs


def _soak_blast(port: int, requests: List[Dict[str, Any]],
                concurrency: int, deadline_s: float = DEADLINE_S,
                reconnect_budget: float = 30.0
                ) -> Tuple[List[Optional[bytes]],
                           List[Optional[float]], float, int]:
    """Returns (raw lines, completion stamps, start stamp, hangs)."""
    t0 = time.monotonic()
    out, done_at, hangs = asyncio.run(_soak_blast_async(
        port, requests, concurrency, deadline_s, reconnect_budget))
    return out, done_at, t0, hangs


# ----------------------------------------------------------------------
# classification against the canon
# ----------------------------------------------------------------------

def _classify(line: bytes, canon: str) -> str:
    """One of:

    ``clean``       untagged success, bit-identical to the canon;
    ``hedged``      success won by a hedge (bit-identical, and part of
                    steady-state tail-cutting — not fault residue);
    ``rerouted``    success served off-home behind an open breaker;
    ``degraded``    success carrying degraded-precision warnings;
    ``shed``        structured ``DEADLINE_EXCEEDED``;
    ``error``       any other structured error;
    ``unsound``     a success that is neither identical to the canon
                    nor tagged degraded — the one unforgivable outcome.
    """
    obj = protocol.decode(line)
    error = obj.get("error")
    if error is not None:
        code = error.get("code") if isinstance(error, dict) else None
        return "shed" if code == protocol.DEADLINE_EXCEEDED else "error"
    result = obj.get("result")
    result = result if isinstance(result, dict) else {}
    degraded = bool(result.get("warnings"))
    if _canonical(line) != canon and not degraded:
        return "unsound"
    if degraded:
        return "degraded"
    fleet = result.get("fleet") or {}
    if fleet.get("rerouted"):
        return "rerouted"
    if fleet.get("hedged"):
        return "hedged"
    return "clean"


def _tally(lines: Sequence[Optional[bytes]], canon: Sequence[str],
           done_at: Sequence[Optional[float]], t0: float,
           deadline_s: float) -> Dict[str, Any]:
    counts = {"clean": 0, "hedged": 0, "rerouted": 0, "degraded": 0,
              "shed": 0, "error": 0, "unsound": 0, "hangs": 0}
    latencies: List[float] = []
    late = 0
    for i, line in enumerate(lines):
        if line is None:
            counts["hangs"] += 1
            continue
        counts[_classify(line, canon[i])] += 1
        stamp = done_at[i]
        if stamp is not None:
            latency = stamp - t0
            latencies.append(latency)
            if latency > deadline_s + HANG_GRACE_S:
                late += 1
    latencies.sort()
    out: Dict[str, Any] = dict(counts)
    out["late"] = late
    out["queries"] = len(lines)
    if latencies:
        out["p50_ms"] = 1000.0 * latencies[len(latencies) // 2]
        out["p99_ms"] = 1000.0 * latencies[
            min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return out


def _wait_healthy(port: int, timeout: float) -> Optional[float]:
    """Seconds until every worker breaker is closed again (``None`` if
    the fleet never healed within ``timeout``)."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < timeout:
        try:
            with ServerClient(port=port, timeout=10.0) as client:
                status = client.fleet_status()
            if all(w["state"] == "closed"
                   for w in status["workers"].values()):
                return time.monotonic() - t0
        except Exception:
            pass
        time.sleep(0.1)
    return None


def _converged(tally: Dict[str, Any]) -> bool:
    """Fault residue is gone: no reroutes, degradations, sheds, errors,
    hangs or unsound answers.  Hedged wins are allowed — hedging is
    steady-state tail-cutting (rate-capped, bit-identical), not a
    symptom the fleet should heal away."""
    return all(tally[k] == 0 for k in
               ("rerouted", "degraded", "shed", "error", "unsound",
                "hangs"))


# ----------------------------------------------------------------------
# the soak
# ----------------------------------------------------------------------

def run_chaos_soak(name: str = "sendmail", scale: float = 0.02,
                   units: int = 3, concurrency: int = 8,
                   repeats: int = 1, worker_timeout: float = 2.0,
                   breaker_reset: float = 2.0,
                   verbose: bool = False) -> Dict[str, Any]:
    """The full soak; returns a JSON-safe result with pass/fail gates."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        paths: List[str] = []
        pairs: List[Tuple[str, str]] = []
        for config in _corpus_units(name, scale, units):
            source = generate_source(config)
            path = os.path.join(tmp, f"{config.name}.c")
            with open(path, "w") as handle:
                handle.write(source)
            paths.append(path)
            for ptr in sorted(set(re.findall(r"\bw\d+p\d+\b", source))):
                pairs.append((path, ptr))
        cache = os.path.join(tmp, "cache")
        journal = os.path.join(tmp, "journal")
        requests = _query_set(pairs, paths)

        # No-fault canon from a single daemon over the same cache.
        ref = LocalWorker("reference", serve_args=["--cache", cache])
        ref.spawn()
        try:
            wait_for_server(port=ref.port, timeout=60.0)
            _, lines = _blast(ref.port, requests,
                              min(8, concurrency))
            canon = [_canonical(line) for line in lines]
        finally:
            ref.terminate()
        if verbose:
            print(f"  [{name}] {len(paths)} files, {len(pairs)} "
                  f"pointers, {len(requests)} queries in the sweep",
                  file=sys.stderr)

        workers = [LocalWorker(f"cw{i}",
                               serve_args=["--cache", cache])
                   for i in range(2)]
        proxies: List[ChaosProxy] = []
        port = _free_port()
        proc = None
        try:
            for worker in workers:
                host, wport = worker.spawn()
                wait_for_server(port=wport, timeout=60.0)
                proxies.append(ChaosProxy(host, wport))
            proc = _spawn_coordinator(
                port, [p.port for p in proxies], cache, journal,
                worker_timeout, breaker_reset)
            wait_for_server(port=port, timeout=120.0)

            # Warmup: loads every file on both sides of the ring and
            # seeds the hedging latency window.  The deadline is huge
            # because first-touch queries pay the (cache-assisted)
            # cluster analysis, not the warm lookup the soak measures.
            lines0, done0, t0, _ = _soak_blast(
                port, requests, concurrency, deadline_s=120.0)
            warm = _tally(lines0, canon, done0, t0, 120.0)

            rounds: List[Dict[str, Any]] = []
            schedule = list(SCHEDULE) * max(1, repeats)
            for seq, (rname, target, fault) in enumerate(schedule):
                proxies[target].set_fault(fault)
                try:
                    lines, done_at, t0, _ = _soak_blast(
                        port, requests, concurrency)
                finally:
                    proxies[target].clear_fault()
                tally = _tally(lines, canon, done_at, t0, DEADLINE_S)
                tally.update({"round": rname, "proxy": target,
                              "sweep": seq // len(SCHEDULE)})
                # Between rounds, wait for the breakers to close, so
                # every round starts from a healthy fleet and its
                # reroute/shed mix is attributable to its own fault.
                # The *last* round skips this: its heal is what the
                # convergence phase below measures.
                if seq + 1 < len(schedule):
                    tally["heal_seconds"] = _wait_healthy(
                        port, breaker_reset + 30.0)
                rounds.append(tally)
                if verbose:
                    print(f"  {rname}@w{target}: "
                          f"{tally['clean']} clean, "
                          f"{tally['rerouted']} rerouted, "
                          f"{tally['hedged']} hedged, "
                          f"{tally['degraded']} degraded, "
                          f"{tally['shed']} shed, "
                          f"{tally['error']} error, "
                          f"{tally['unsound']} UNSOUND, "
                          f"{tally['hangs']} hangs",
                          file=sys.stderr)
            faults_stopped = time.monotonic()

            # Convergence: poll until a full sweep carries no fault
            # residue (see :func:`_converged`).
            convergence: Optional[float] = None
            sweeps = 0
            while time.monotonic() - faults_stopped < \
                    breaker_reset + 30.0:
                lines, done_at, t0, _ = _soak_blast(
                    port, requests, concurrency)
                sweeps += 1
                tally = _tally(lines, canon, done_at, t0, DEADLINE_S)
                if _converged(tally):
                    convergence = time.monotonic() - faults_stopped
                    break
                time.sleep(0.25)

            with ServerClient(port=port, timeout=30.0) as client:
                status = client.fleet_status()
            hedging = status["hedging"]
            journal_before = status.get("journal", {})

            # Kill the coordinator mid-load; the load generator rides
            # the restart on reconnect-with-backoff and every query
            # still completes.
            ride = [dict(r, id=f"ride-{i}-{r['id']}")
                    for i in range(3) for r in requests]
            holder: Dict[str, Any] = {}

            def _ride() -> None:
                holder["result"] = _soak_blast(
                    port, ride, concurrency, deadline_s=60.0,
                    reconnect_budget=60.0)

            rider = threading.Thread(target=_ride)
            rider.start()
            time.sleep(0.5)
            proc.send_signal(signal.SIGKILL)
            proc.wait(10.0)
            proc = _spawn_coordinator(
                port, [p.port for p in proxies], cache, journal,
                worker_timeout, breaker_reset)
            wait_for_server(port=port, timeout=120.0)
            rider.join(timeout=180.0)
            ride_lines, _, _, ride_hangs = holder.get(
                "result", ([], [], 0.0, len(ride)))
            ride_completed = sum(1 for ln in ride_lines
                                 if ln is not None)

            with ServerClient(port=port, timeout=30.0) as client:
                recovered = client.fleet_status().get("journal", {})
            lines, done_at, t0, _ = _soak_blast(
                port, requests, concurrency)
            post = _tally(lines, canon, done_at, t0, DEADLINE_S)
            identical_after_restart = all(
                line is not None and _canonical(line) == canon[i]
                for i, line in enumerate(lines))
            proxy_stats = [dict(p.stats) for p in proxies]

            with ServerClient(port=port, timeout=30.0) as client:
                client.shutdown()
            proc.wait(30.0)
        finally:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(10.0)
            for proxy in proxies:
                proxy.close()
            for worker in workers:
                worker.terminate()

    unsound = sum(r["unsound"] for r in rounds) + warm["unsound"] \
        + post["unsound"]
    hangs = sum(r["hangs"] for r in rounds) + warm["hangs"] \
        + post["hangs"]
    late = sum(r["late"] for r in rounds)
    tagged = sum(r["rerouted"] + r["hedged"] + r["degraded"]
                 for r in rounds)
    recovered_info = recovered.get("recovered", {})
    hedge_cap = 0.05
    # The cap is enforced pre-decision, so the final rate can sit at
    # most one hedge above fraction * eligible.
    hedge_ok = hedging["issued"] <= \
        hedge_cap * max(1, hedging["eligible"]) + 1
    delay_p99 = [r["p99_ms"] for r in rounds
                 if r["round"] == "delay" and "p99_ms" in r]
    hedged_p99_ms = max(delay_p99) if delay_p99 else None

    gates = {
        "soundness": {"unsound": unsound, "ok": unsound == 0},
        "no_hangs": {"hangs": hangs, "late": late,
                     "ok": hangs == 0 and late == 0},
        "convergence": {
            "seconds": convergence,
            "bound_seconds": breaker_reset + 10.0,
            "ok": convergence is not None
            and convergence <= breaker_reset + 10.0,
        },
        "hedge_rate": {"rate": hedging["rate"], "cap": hedge_cap,
                       "issued": hedging["issued"],
                       "eligible": hedging["eligible"],
                       "ok": hedge_ok},
        "hedged_p99_recorded": {"p99_ms": hedged_p99_ms,
                                "ok": hedged_p99_ms is not None},
        "recovery": {
            "recovered_files": recovered_info.get("files", 0),
            "rebuilt": recovered_info.get("rebuilt", 0),
            "ride_completed": ride_completed,
            "ride_total": len(ride),
            "ride_hangs": ride_hangs,
            "ok": identical_after_restart
            and recovered_info.get("files", 0) >= len(paths)
            and recovered_info.get("rebuilt", 0)
            == recovered_info.get("files", 0)
            and ride_hangs == 0 and ride_completed == len(ride),
        },
    }
    return {
        "program": name, "scale": scale, "translation_units": units,
        "queries_per_sweep": len(requests),
        "deadline_seconds": DEADLINE_S,
        "worker_timeout": worker_timeout,
        "breaker_reset": breaker_reset,
        "schedule": [{"round": rname, "proxy": target,
                      "fault": fault.kind}
                     for rname, target, fault in SCHEDULE],
        "warmup": warm,
        "rounds": rounds,
        "tagged_total": tagged,
        "convergence_sweeps": sweeps,
        "hedging": hedging,
        "journal_before_kill": journal_before,
        "journal_after_restart": recovered,
        "identical_after_restart": identical_after_restart,
        "post_restart": post,
        "proxy_stats": proxy_stats,
        "gates": gates,
    }


def check_gate(data: Dict[str, Any]) -> List[str]:
    """Failures of the chaos invariants, empty when healthy."""
    failures = []
    for key, gate in sorted(data["gates"].items()):
        if not gate["ok"]:
            detail = {k: v for k, v in gate.items() if k != "ok"}
            failures.append(f"{key}: {json.dumps(detail)}")
    return failures


def render(data: Dict[str, Any]) -> str:
    lines = [f"chaos soak: {data['program']} x{data['scale']}, "
             f"{data['queries_per_sweep']} queries/sweep, "
             f"{len(data['rounds'])} fault rounds"]
    for r in data["rounds"]:
        lines.append(
            f"  {r['round']}@w{r['proxy']}: {r['clean']} clean / "
            f"{r['rerouted']} rerouted / {r['hedged']} hedged / "
            f"{r['degraded']} degraded / {r['shed']} shed / "
            f"{r['error']} error / {r['unsound']} unsound / "
            f"{r['hangs']} hangs")
    conv = data["gates"]["convergence"]["seconds"]
    lines.append(f"  convergence: "
                 f"{'never' if conv is None else f'{conv:.2f}s'} "
                 f"(bound {data['gates']['convergence']['bound_seconds']:.1f}s)")
    hedging = data["hedging"]
    lines.append(f"  hedging: {hedging['issued']} issued / "
                 f"{hedging['won']} won / {hedging['eligible']} "
                 f"eligible (rate {hedging['rate']:.3f})")
    rec = data["gates"]["recovery"]
    lines.append(f"  recovery: {rec['recovered_files']} files from "
                 f"journal, ride-through "
                 f"{rec['ride_completed']}/{rec['ride_total']}, "
                 f"identity {'ok' if data['identical_after_restart'] else 'BROKEN'}")
    verdicts = ", ".join(f"{k}={'ok' if g['ok'] else 'FAIL'}"
                         for k, g in sorted(data["gates"].items()))
    lines.append(f"  gates: {verdicts}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos soak: fault schedule + coordinator kill "
                    "under soundness/hang/convergence/recovery gates")
    parser.add_argument("--program", default="sendmail")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="program size fraction (default 0.02)")
    parser.add_argument("--units", type=int, default=3,
                        help="translation units (default 3)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="client connections (default 8)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="passes over the fault schedule")
    parser.add_argument("--out", default="BENCH_chaos.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when an invariant fails")
    args = parser.parse_args(argv)
    data = run_chaos_soak(name=args.program, scale=args.scale,
                          units=args.units,
                          concurrency=args.concurrency,
                          repeats=args.repeats, verbose=True)
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    if args.check:
        failures = check_gate(data)
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("chaos gate: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Demand-engine benchmark: leak and deadlock clients vs whole-program.

Two sections, both written to ``BENCH_demand.json``:

* **savings** — one mid-sized synthetic program with seeded allocation
  webs and lock pairs.  Each checker runs twice: through the shared
  demand engine (seed pointers -> minimal cluster selection -> sliced
  FSCI -> widening) and with ``whole_program=True`` (every pointer
  seeded, every cluster selected — what a checker without demand
  scoping would pay).  Findings must be identical, both must match the
  generator's ground truth, and the demand side must select at least
  ``MIN_REDUCTION``x fewer clusters.
* **oracle** — a corpus of small synthetic programs whose paths the
  concrete executor can enumerate *exhaustively*.  The heap-lifetime
  oracle's must-leaks and the lock oracle's realizable cycles are
  ground truth the static clients must cover with **zero false
  negatives** (the static side may over-approximate, never under-).

Exit status 1 on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from .metrics import format_table
from .synth import SynthConfig, generate

#: The demand side must select at least this many times fewer clusters.
MIN_REDUCTION = 3.0

#: Oracle-corpus seeds where exhaustive path enumeration completes
#: within the default bounds (probed; most seeds explode).
ORACLE_SEEDS = (11, 13, 2008)


def _leak_score(sp, leaked) -> Dict[str, Any]:
    expected = {f"alloc@{t['site']}" for t in sp.leak_truth if t["leaked"]}
    silent = {f"alloc@{t['site']}" for t in sp.leak_truth
              if not t["leaked"]}
    reported = {str(site) for site in leaked}
    return {
        "expected": len(expected),
        "detected": len(expected & reported),
        "missed": sorted(expected - reported),
        "silent_webs": len(silent),
        "silent_flagged": sorted(reported & silent),
    }


def _deadlock_score(sp, cycles) -> Dict[str, Any]:
    expected = {frozenset(t["locks"]) for t in sp.deadlock_truth
                if t["cycle"]}
    silent = {frozenset(t["locks"]) for t in sp.deadlock_truth
              if not t["cycle"]}
    reported = {frozenset(str(n) for n in c.nodes) for c in cycles}
    return {
        "expected": len(expected),
        "detected": len(expected & reported),
        "missed": sorted(",".join(sorted(c)) for c in expected - reported),
        "silent_pairs": len(silent),
        "silent_flagged": sorted(",".join(sorted(c))
                                 for c in reported & silent),
    }


def _mode_stats(run, seconds: float) -> Dict[str, Any]:
    st = run.stats
    return {
        "seconds": seconds,
        "findings": len(run.diagnostics),
        "rounds": run.rounds,
        "clusters_selected": st.clusters_selected,
        "clusters_total": st.clusters_total,
        "pointers_tracked": st.pointers_selected,
        "pointers_total": st.pointers_total,
    }


def _diag_keys(run) -> List[Any]:
    return sorted((d.rule_id, d.subject, str(d.loc)) for d in
                  run.diagnostics)


def run_savings(pointers: int = 240, leak_webs: int = 9,
                deadlock_pairs: int = 4, seed: int = 2008,
                repeats: int = 3) -> Dict[str, Any]:
    """Demand vs whole-program for both clients on one program."""
    from ..checkers import run_deadlocks, run_leaks
    from ..core import BootstrapAnalyzer

    sp = generate(SynthConfig(name="demand-bench", pointers=pointers,
                              leak_webs=leak_webs,
                              deadlock_pairs=deadlock_pairs, seed=seed))
    program = sp.program
    t0 = time.perf_counter()
    result = BootstrapAnalyzer(program).run()
    bootstrap_seconds = time.perf_counter() - t0

    def best_of(fn):
        times, run = [], None
        for _ in range(repeats):
            t1 = time.perf_counter()
            run = fn()
            times.append(time.perf_counter() - t1)
        return run, min(times)

    out: Dict[str, Any] = {
        "pointers": len(program.pointers),
        "leak_webs": leak_webs,
        "deadlock_pairs": deadlock_pairs,
        "repeats": repeats,
        "bootstrap_seconds": bootstrap_seconds,
        "clients": {},
    }
    clients = {
        "leaks": lambda whole: run_leaks(
            program, result=result, whole_program=whole),
        "deadlocks": lambda whole: run_deadlocks(
            program, result=result,
            thread_entries=list(sp.thread_entries), whole_program=whole),
    }
    for name, runner in clients.items():
        demand_run, demand_s = best_of(lambda: runner(False))
        whole_run, whole_s = best_of(lambda: runner(True))
        score = _leak_score(sp, demand_run.leaked) if name == "leaks" \
            else _deadlock_score(sp, demand_run.cycles)
        selected = max(1, demand_run.stats.clusters_selected)
        out["clients"][name] = {
            "demand": _mode_stats(demand_run, demand_s),
            "whole": _mode_stats(whole_run, whole_s),
            "findings_identical":
                _diag_keys(demand_run) == _diag_keys(whole_run),
            "cluster_reduction":
                whole_run.stats.clusters_selected / selected,
            "speedup": whole_s / demand_s if demand_s else 0.0,
            "ground_truth": score,
        }
    return out


def run_oracle_corpus(seeds: Sequence[int] = ORACLE_SEEDS,
                      max_steps: int = 3000,
                      max_paths: int = 6000) -> Dict[str, Any]:
    """Static leak/deadlock findings vs exhaustive concrete execution."""
    from ..analysis.oracle import execute_heap, execute_lock_orders
    from ..checkers import run_deadlocks, run_leaks
    from ..core import BootstrapAnalyzer

    # The oracle's DFS recursion depth scales with max_steps.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 40 * max_steps))
    programs = []
    for seed in seeds:
        sp = generate(SynthConfig(
            name=f"demand-oracle-{seed}", pointers=20, functions=4,
            leak_webs=6, deadlock_pairs=3, hub_fractions=(),
            recursion=False, seed=seed))
        program = sp.program
        result = BootstrapAnalyzer(program).run()
        leak_run = run_leaks(program, result=result)
        dl_run = run_deadlocks(program, result=result,
                               thread_entries=list(sp.thread_entries))
        heap_facts, heap = execute_heap(program, max_steps=max_steps,
                                        max_paths=max_paths)
        _, lock_cycles = execute_lock_orders(
            program, list(sp.thread_entries), max_steps=max_steps,
            max_paths=max_paths)
        static_leaked = {str(site) for site in leak_run.leaked}
        oracle_leaked = {str(site) for site in heap.must_leaked}
        static_cycles = {frozenset(str(n) for n in c.nodes)
                         for c in dl_run.cycles}
        oracle_cyc = {frozenset(str(o) for o in c) for c in lock_cycles}
        programs.append({
            "seed": seed,
            "paths_explored": heap_facts.paths_explored,
            "truncated": heap_facts.truncated,
            "leaks": {
                "oracle": sorted(oracle_leaked),
                "static": sorted(static_leaked),
                "false_negatives": sorted(oracle_leaked - static_leaked),
            },
            "deadlocks": {
                "oracle": sorted(",".join(sorted(c)) for c in oracle_cyc),
                "static": sorted(",".join(sorted(c))
                                 for c in static_cycles),
                "false_negatives": sorted(
                    ",".join(sorted(c)) for c in oracle_cyc
                    - static_cycles),
            },
        })
    return {
        "seeds": list(seeds),
        "max_steps": max_steps,
        "max_paths": max_paths,
        "programs": programs,
        "leak_false_negatives": sum(
            len(p["leaks"]["false_negatives"]) for p in programs),
        "deadlock_false_negatives": sum(
            len(p["deadlocks"]["false_negatives"]) for p in programs),
        "truncated": any(p["truncated"] for p in programs),
    }


def violations(data: Dict[str, Any]) -> List[str]:
    """Human-readable acceptance failures (empty = all good)."""
    out = []
    for name, client in data["savings"]["clients"].items():
        if not client["findings_identical"]:
            out.append(f"{name}: demand and whole-program findings differ")
        if client["cluster_reduction"] < MIN_REDUCTION:
            out.append(f"{name}: cluster reduction "
                       f"{client['cluster_reduction']:.1f}x "
                       f"< {MIN_REDUCTION:.0f}x")
        truth = client["ground_truth"]
        if truth["missed"] or truth["silent_flagged"]:
            out.append(f"{name}: ground truth violated "
                       f"(missed {truth['missed']}, "
                       f"flagged {truth['silent_flagged']})")
    oracle = data["oracle"]
    if oracle["truncated"]:
        out.append("oracle: path enumeration truncated (not exhaustive)")
    if oracle["leak_false_negatives"]:
        out.append(f"oracle: {oracle['leak_false_negatives']} leak "
                   "false negative(s)")
    if oracle["deadlock_false_negatives"]:
        out.append(f"oracle: {oracle['deadlock_false_negatives']} "
                   "deadlock false negative(s)")
    return out


def render(data: Dict[str, Any]) -> str:
    savings = data["savings"]
    rows = []
    for name, client in savings["clients"].items():
        for mode in ("demand", "whole"):
            st = client[mode]
            rows.append([
                f"{name}/{mode}",
                f"{st['seconds'] * 1000:.1f}",
                f"{st['clusters_selected']}/{st['clusters_total']}",
                str(st["findings"]),
            ])
    table = format_table(
        ["client/mode", "time (ms)", "clusters", "findings"], rows,
        title=f"Demand engine ({savings['pointers']} pointers, "
              f"{savings['leak_webs']} allocation webs, "
              f"{savings['deadlock_pairs']} lock pairs)")
    lines = [table, ""]
    for name, client in savings["clients"].items():
        truth = client["ground_truth"]
        lines.append(
            f"{name}: {client['cluster_reduction']:.1f}x fewer clusters, "
            f"{client['speedup']:.1f}x faster; findings identical: "
            f"{client['findings_identical']}; ground truth "
            f"{truth['detected']}/{truth['expected']} detected")
    oracle = data["oracle"]
    lines.append(
        f"oracle corpus ({len(oracle['programs'])} programs, exhaustive: "
        f"{not oracle['truncated']}): "
        f"{oracle['leak_false_negatives']} leak FN, "
        f"{oracle['deadlock_false_negatives']} deadlock FN")
    return "\n".join(lines)


def run_demand_bench(pointers: int = 240, leak_webs: int = 9,
                     deadlock_pairs: int = 4, seed: int = 2008,
                     repeats: int = 3) -> Dict[str, Any]:
    return {
        "savings": run_savings(pointers=pointers, leak_webs=leak_webs,
                               deadlock_pairs=deadlock_pairs, seed=seed,
                               repeats=repeats),
        "oracle": run_oracle_corpus(),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the demand engine's leak and deadlock "
                    "clients against whole-program analysis and "
                    "concrete-execution oracles")
    parser.add_argument("--pointers", type=int, default=240,
                        help="savings-program size (default 240)")
    parser.add_argument("--leak-webs", type=int, default=9)
    parser.add_argument("--deadlock-pairs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--out", default="BENCH_demand.json",
                        help="output JSON path (default BENCH_demand.json)")
    args = parser.parse_args(argv)
    data = run_demand_bench(pointers=args.pointers,
                            leak_webs=args.leak_webs,
                            deadlock_pairs=args.deadlock_pairs,
                            seed=args.seed, repeats=args.repeats)
    problems = violations(data)
    data["violations"] = problems
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    if problems:
        for problem in problems:
            print(f"VIOLATION: {problem}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Parallel-execution benchmark: real speedup and cache skip ratio.

Table 1's parallel numbers are *simulated* (max part time over 5
machines).  This harness measures the real thing on the largest corpus
program: wall-clock for the sequential ``simulate`` backend versus the
``processes`` backend at increasing worker counts, plus the summary
cache's skip ratio on a warm re-run.  Results go to
``BENCH_parallel.json`` so CI can archive them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import Any, Dict, List, Optional, Sequence

from ..core import BootstrapAnalyzer, BootstrapConfig, CascadeConfig
from .corpus import PAPER_TABLE1, build
from .metrics import format_table

#: Largest corpus program by the paper's pointer count (sendmail).
LARGEST = max(PAPER_TABLE1, key=lambda r: r.pointers).name


def run_parallel_bench(name: str = LARGEST, scale: float = 0.02,
                       jobs_list: Sequence[int] = (2, 4),
                       scheduler: str = "lpt",
                       threshold: Optional[int] = None,
                       verbose: bool = False) -> Dict[str, Any]:
    """Measure one corpus program across backends; JSON-safe result."""
    sp = build(name, scale=scale)
    program = sp.program
    if threshold is None:
        threshold = max(6, int(60 * scale))
    config = BootstrapConfig(
        cascade=CascadeConfig(andersen_threshold=threshold))

    def fresh():
        # A fresh result per run: per-cluster analyses are memoized on
        # the result object, which would let later runs cheat.
        return BootstrapAnalyzer(program, config).run()

    boot = fresh()
    n_clusters = len(boot.clusters)
    if verbose:
        print(f"  [{name}] scale={scale}: {len(program.pointers)} pointers, "
              f"{n_clusters} clusters", file=sys.stderr)

    runs: List[Dict[str, Any]] = []
    base = fresh().analyze_all(backend="simulate")
    baseline = base.wall_time
    runs.append({"backend": "simulate", "jobs": 1,
                 "wall_time": baseline, "speedup": 1.0,
                 "max_part_time": base.max_part_time,
                 "machine_speedup": 1.0})
    for jobs in jobs_list:
        report = fresh().analyze_all(backend="processes", jobs=jobs,
                                     scheduler=scheduler)
        # machine_speedup is the paper's accounting: total per-cluster
        # work over the slowest part — what the schedule achieves on
        # ``jobs`` dedicated machines, independent of how many cores this
        # host happens to have (wall speedup collapses on a 1-core CI
        # runner where extra workers only add contention).
        machine = (report.total_time / report.max_part_time
                   if report.max_part_time else 1.0)
        runs.append({
            "backend": "processes", "jobs": jobs,
            "wall_time": report.wall_time,
            "speedup": baseline / report.wall_time if report.wall_time else 0,
            "max_part_time": report.max_part_time,
            "machine_speedup": machine,
        })
        if verbose:
            print(f"  processes x{jobs}: {report.wall_time:.2f}s wall "
                  f"({runs[-1]['speedup']:.2f}x), schedule balance "
                  f"{machine:.2f}x", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cdir:
        cold = fresh().analyze_all(backend="simulate", cache=cdir)
        warm = fresh().analyze_all(backend="simulate", cache=cdir)
    skip_ratio = warm.cache_hits / n_clusters if n_clusters else 1.0
    cache = {
        "clusters": n_clusters,
        "cold_misses": cold.cache_misses,
        "warm_hits": warm.cache_hits,
        "warm_misses": warm.cache_misses,
        "warm_skip_ratio": skip_ratio,
        "cold_wall_time": cold.wall_time,
        "warm_wall_time": warm.wall_time,
    }
    if verbose:
        print(f"  cache: warm skip {skip_ratio:.0%} "
              f"({warm.cache_hits}/{n_clusters})", file=sys.stderr)
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return {"program": name, "scale": scale, "scheduler": scheduler,
            "pointers": len(program.pointers), "clusters": n_clusters,
            "cpus": cpus, "runs": runs, "cache": cache}


def check_gate(current: Dict[str, Any], baseline: Dict[str, Any],
               tolerance: float = 0.2) -> List[str]:
    """Soft regression gate against a committed baseline JSON.

    Wall-clock is machine-dependent, so the gate compares the two
    machine-independent numbers: ``machine_speedup`` per jobs count
    (the schedule's balance) and the warm-cache skip ratio.  Each may
    drift down by ``tolerance`` (fractional) before failing — the same
    ratio-based discipline as ``profile_solvers --gate``.
    """
    failures = []
    if current.get("program") != baseline.get("program"):
        failures.append(
            f"program mismatch: current {current.get('program')!r} vs "
            f"baseline {baseline.get('program')!r} (pass matching "
            "--program/--scale to compare)")
        return failures
    base_by_jobs = {r["jobs"]: r for r in baseline.get("runs", [])
                    if r.get("backend") == "processes"}
    for run in current.get("runs", []):
        if run.get("backend") != "processes":
            continue
        base = base_by_jobs.get(run["jobs"])
        if base is None:
            continue
        floor = base["machine_speedup"] * (1.0 - tolerance)
        if run["machine_speedup"] < floor:
            failures.append(
                f"machine_speedup at jobs={run['jobs']}: "
                f"{run['machine_speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['machine_speedup']:.2f}x "
                f"- {tolerance:.0%})")
    cur_skip = current.get("cache", {}).get("warm_skip_ratio", 0.0)
    base_skip = baseline.get("cache", {}).get("warm_skip_ratio", 0.0)
    skip_floor = base_skip * (1.0 - tolerance)
    if cur_skip < skip_floor:
        failures.append(
            f"warm_skip_ratio: {cur_skip:.0%} fell below {skip_floor:.0%} "
            f"(baseline {base_skip:.0%} - {tolerance:.0%})")
    return failures


def render(data: Dict[str, Any]) -> str:
    rows = [[r["backend"], str(r["jobs"]), f"{r['wall_time']:.2f}",
             f"{r['speedup']:.2f}x", f"{r['machine_speedup']:.2f}x"]
            for r in data["runs"]]
    table = format_table(
        ["backend", "jobs", "wall (s)", "speedup", "machines"], rows,
        title=f"Parallel execution ({data['program']}, "
              f"scale={data['scale']}, {data['clusters']} clusters, "
              f"{data['cpus']} cpu(s))")
    cache = data["cache"]
    return (table + "\n\n"
            f"warm-cache skip ratio: {cache['warm_skip_ratio']:.0%} "
            f"({cache['warm_hits']}/{cache['clusters']} clusters)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure real multiprocess speedup and cache hit rate")
    parser.add_argument("--program", default=LARGEST,
                        help=f"corpus program name (default {LARGEST}, "
                             "the largest)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="program size fraction (default 0.02)")
    parser.add_argument("--jobs", type=str, default="2,4",
                        help="comma-separated worker counts (default 2,4)")
    parser.add_argument("--scheduler", choices=["greedy", "lpt"],
                        default="lpt")
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="output JSON path (default BENCH_parallel.json)")
    parser.add_argument("--gate", metavar="BASELINE",
                        help="compare against a baseline BENCH_parallel.json "
                             "and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional drift below the baseline "
                             "ratios (default 0.2)")
    args = parser.parse_args(argv)
    jobs_list = [int(j) for j in args.jobs.split(",") if j]
    data = run_parallel_bench(name=args.program, scale=args.scale,
                              jobs_list=jobs_list, scheduler=args.scheduler,
                              verbose=True)
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    if args.gate:
        with open(args.gate) as handle:
            baseline = json.load(handle)
        failures = check_gate(data, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("perf gate: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The benchmark corpus: one synthetic stand-in per Table 1 program.

Each entry records the paper's reported numbers (KLOC, pointer count,
cluster counts/sizes/times) alongside a :class:`SynthConfig` calibrated
to reproduce the *relationships* between them: relative program sizes,
the size of the largest Steensgaard partition, and how much Andersen
clustering shrinks it (a lot for ``sendmail``, almost nothing for
``mt-daapd``).

``scale`` shrinks every program proportionally so the whole Table 1 run
finishes in CI time on CPython; the harness reports ratios, which is
what EXPERIMENTS.md compares.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .synth import SynthConfig, SynthProgram, generate


@dataclass(frozen=True)
class PaperRow:
    """Table 1's reported numbers for one benchmark."""

    name: str
    kloc: float
    pointers: int
    time_nocluster: Optional[float]   # None == "> 15min" timeout
    steens_clusters: int
    steens_max: int
    time_steens: float
    andersen_clusters: int
    andersen_max: int
    time_andersen: float


#: Table 1, transcribed from the paper (times in seconds).
PAPER_TABLE1: List[PaperRow] = [
    PaperRow("sock", 0.9, 1089, 0.11, 517, 9, 0.03, 539, 6, 0.01),
    PaperRow("hugetlb", 1.2, 3607, 8, 1091, 45, 0.7, 1290, 11, 0.78),
    PaperRow("ctrace", 1.4, 377, 0.07, 47, 36, 0.03, 193, 6, 0.03),
    PaperRow("autofs", 8.3, 3258, 6.48, 589, 125, 0.52, 907, 27, 0.92),
    PaperRow("plip", 14, 3257, 6.51, 568, 26, 0.57, 761, 14, 0.62),
    PaperRow("ptrace", 15, 9075, 16, 924, 96, 1.46, 5941, 18, 0.67),
    PaperRow("raid", 17, 814, 0.12, 100, 129, 0.03, 192, 26, 0.03),
    PaperRow("jfs_dmap", 17, 14339, 510, 4190, 39, 3.62, 9214, 11, 1.34),
    PaperRow("tty_io", 18, 2675, 22, 828, 8, 0.52, 882, 6, 0.45),
    PaperRow("ipoib_multicast", 26, 2888, 54.7, 1167, 15, 1, 1378, 9, 0.5),
    PaperRow("wavelan_ko", 20, 3117, 17.68, 591, 44, 1.2, 744, 19, 1),
    PaperRow("pico", 22, 1903, None, 484, 171, 4.98, 871, 102, 4.46),
    PaperRow("synclink", 24, 16355, None, 1237, 95, 26.85, 3503, 93, 26),
    PaperRow("icecast", 49, 7490, 459, 964, 114, 15, 2553, 52, 15),
    PaperRow("freshclam", 54, 1991, None, 157, 77, 0.6, 740, 45, 0.44),
    PaperRow("mt_daapd", 92, 4008, None, 635, 89, 4.8, 1118, 83, 12.79),
    PaperRow("sigtool", 95, 5881, None, 552, 151, 8, 981, 147, 7),
    PaperRow("clamd", 101, 16639, 61, 1274, 346, 49, 3915, 187, 41),
    PaperRow("sendmail", 115, 65134, 4560, 21088, 596, 187.8, 24580, 193, 138.9),
    PaperRow("httpd", 128, 16180, None, 1779, 199, 35, 3893, 152, 32),
]

PAPER_BY_NAME: Dict[str, PaperRow] = {r.name: r for r in PAPER_TABLE1}

#: Programs the paper highlights in its narrative.
HIGHLIGHTS = ("sendmail", "mt_daapd", "autofs")


def _config_for(row: PaperRow, scale: float) -> SynthConfig:
    pointers = max(40, int(row.pointers * scale))
    # Largest-partition fraction and refinement behaviour from the paper's
    # reported numbers.
    hub_fraction = min(0.6, max(0.05, row.steens_max / row.pointers * 3))
    # Overlap is the target refinement ratio, read straight off Table 1:
    # max Andersen cluster / max Steensgaard partition (mt-daapd: 83/89 ≈
    # 0.93 -> clustering can't refine; sendmail: 193/596 ≈ 0.32).
    overlap = (row.andersen_max / row.steens_max) if row.steens_max else 0.5
    functions = max(4, int(row.kloc * 2 * max(scale * 4, 0.2)))
    return SynthConfig(
        name=row.name,
        pointers=pointers,
        functions=min(functions, 60),
        kloc=row.kloc,
        hub_fractions=(hub_fraction,),
        overlap=overlap,
        lock_count=2 if row.kloc >= 8 else 1,
        fp_sites=1 if row.kloc >= 15 else 0,
        # Struct-heavy programs carry write-mostly per-field registry
        # cells (normalize.py's flattening shape); scale the count with
        # program size so the field-sensitive clustering stage has the
        # oversharing pattern it exists to split.
        field_webs=max(2, pointers // 60) if row.kloc >= 8 else 0,
        # zlib.crc32, not hash(): str hashing is salted by PYTHONHASHSEED,
        # which made every interpreter generate a *different* corpus
        # program for the same name — unreproducible benches and a
        # worthless cross-process differential suite.
        seed=zlib.crc32(row.name.encode("utf-8")) % (2 ** 31),
    )


def corpus_configs(scale: float = 0.1,
                   names: Optional[List[str]] = None) -> List[SynthConfig]:
    """Configs for the (optionally filtered) corpus at ``scale``."""
    rows = PAPER_TABLE1 if names is None else \
        [PAPER_BY_NAME[n] for n in names]
    return [_config_for(r, scale) for r in rows]


def build(name: str, scale: float = 0.1) -> SynthProgram:
    """Build one corpus program by its Table 1 name."""
    return generate(_config_for(PAPER_BY_NAME[name], scale))


def autofs_like(scale: float = 0.25) -> SynthProgram:
    """The Figure 1 subject (cluster-size frequency histogram)."""
    return build("autofs", scale)


def fp_heavy_config(scale: float = 0.1) -> SynthConfig:
    """A function-pointer-dense workload (ROADMAP item 5's leftover).

    Modeled on callback-table programs (icecast/mt-daapd style): many
    indirect call sites whose generator-sampled targets are recorded as
    :attr:`SynthProgram.fp_truth`, so benches can check that the
    Andersen and cut-shortcut stages resolve each site to exactly the
    seeded callee set.
    """
    pointers = max(60, int(4000 * scale))
    return SynthConfig(
        name="fp_heavy",
        pointers=pointers,
        functions=24,
        kloc=30.0,
        hub_fractions=(0.12,),
        overlap=0.4,
        lock_count=1,
        fp_sites=max(4, pointers // 40),
        field_webs=max(2, pointers // 80),
        seed=zlib.crc32(b"fp_heavy") % (2 ** 31),
    )


def fp_heavy(scale: float = 0.1) -> SynthProgram:
    """Build the fp-heavy workload at ``scale``."""
    return generate(fp_heavy_config(scale))

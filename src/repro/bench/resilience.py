"""Resilience benchmark: policy overhead, recovery latency, soundness.

The fault-tolerance layer (:mod:`repro.core.resilience`) must be close
to free when nothing fails and sound when everything does.  This harness
measures both on a corpus program with the real ``processes`` backend:

* **overhead** — wall-clock of a clean run with the full
  :class:`~repro.core.resilience.RunPolicy` (timeout + retries +
  degradation armed) over a clean run with the default policy, best of
  ``--repeats`` runs each.  The acceptance bar is <5%.
* **recovery** — the same run with ``crash``/``hang``/``corrupt`` faults
  injected into three clusters: wall-clock, recovery latency (time the
  faulted run spends beyond the clean policy run), and which clusters
  degraded to which precision level.
* **soundness** — every degraded points-to set must be a superset of the
  clean run's set for the same cluster (Theorems 2/7: each rung of the
  cascade over-approximates the one above).

Results go to ``BENCH_resilience.json`` so CI can archive them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional, Sequence

from ..core import BootstrapAnalyzer, BootstrapConfig, CascadeConfig
from ..core.faults import FaultSpec
from ..core.resilience import RunPolicy
from .corpus import PAPER_TABLE1, build
from .metrics import format_table

#: Largest corpus program by the paper's pointer count (sendmail).
LARGEST = max(PAPER_TABLE1, key=lambda r: r.pointers).name

#: The armed-but-unused policy for the overhead measurement: a generous
#: timeout that never fires on a healthy cluster, plus retries and
#: degradation ready to go.
ARMED_POLICY = RunPolicy(cluster_timeout=60.0, retries=2, degrade=True)

#: Faults for the recovery measurement: one cluster crashes its worker,
#: one hangs past the timeout (bounded so an abandoned worker still
#: exits), one returns garbage.
RECOVERY_FAULTS = (FaultSpec(kind="crash", match="#0"),
                   FaultSpec(kind="hang", match="#1", duration=4.0),
                   FaultSpec(kind="corrupt", match="#2"))


def _superset_ok(clean: Dict[str, Any], degraded: Dict[str, Any]) -> bool:
    """Degraded points-to must cover the clean points-to, pointerwise."""
    clean_pts = clean.get("points_to", {})
    degraded_pts = degraded.get("points_to", {})
    return all(set(clean_pts[name]) <= set(degraded_pts.get(name, []))
               for name in clean_pts)


def run_resilience_bench(name: str = LARGEST, scale: float = 0.006,
                         jobs: int = 2, repeats: int = 2,
                         threshold: Optional[int] = None,
                         verbose: bool = False) -> Dict[str, Any]:
    """Measure policy overhead and fault recovery; JSON-safe result."""
    sp = build(name, scale=scale)
    program = sp.program
    if threshold is None:
        threshold = max(6, int(60 * scale))
    config = BootstrapConfig(
        cascade=CascadeConfig(andersen_threshold=threshold))

    def fresh():
        # A fresh result per run: per-cluster analyses are memoized on
        # the result object, which would let later runs cheat.
        return BootstrapAnalyzer(program, config).run()

    boot = fresh()
    n_clusters = len(boot.clusters)
    if n_clusters < 3:
        raise SystemExit(f"resilience bench needs >=3 clusters, "
                         f"{name}@{scale} has {n_clusters}")
    if verbose:
        print(f"  [{name}] scale={scale}: {len(program.pointers)} "
              f"pointers, {n_clusters} clusters", file=sys.stderr)

    def best_of(policy):
        walls = []
        for _ in range(max(1, repeats)):
            report = fresh().analyze_all(backend="processes", jobs=jobs,
                                         policy=policy)
            walls.append(report.wall_time)
        return min(walls), report

    base_wall, _ = best_of(None)
    armed_wall, clean_report = best_of(ARMED_POLICY)
    overhead = (armed_wall - base_wall) / base_wall if base_wall else 0.0
    if verbose:
        print(f"  clean: {base_wall:.2f}s default policy, "
              f"{armed_wall:.2f}s armed ({overhead:+.1%})",
              file=sys.stderr)

    fault_policy = RunPolicy(cluster_timeout=2.0, retries=1, degrade=True)
    faulted = fresh().analyze_all(backend="processes", jobs=jobs,
                                  policy=fault_policy,
                                  faults=RECOVERY_FAULTS)
    degraded = faulted.degraded
    sound = all(_superset_ok(clean_report.results[i], faulted.results[i])
                for i in degraded)
    recovery_latency = max(0.0, faulted.wall_time - armed_wall)
    if verbose:
        print(f"  faulted: {faulted.wall_time:.2f}s wall, "
              f"{len(degraded)} degraded "
              f"({', '.join(f'#{i}: {lvl}' for i, lvl in sorted(degraded.items()))}), "
              f"sound={sound}", file=sys.stderr)

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return {
        "program": name, "scale": scale, "jobs": jobs, "repeats": repeats,
        "pointers": len(program.pointers), "clusters": n_clusters,
        "cpus": cpus,
        "overhead": {
            "base_wall_time": base_wall,
            "armed_wall_time": armed_wall,
            "overhead_fraction": overhead,
            "within_budget": overhead < 0.05,
        },
        "recovery": {
            "faults": [f.to_dict() for f in RECOVERY_FAULTS],
            "cluster_timeout": fault_policy.cluster_timeout,
            "wall_time": faulted.wall_time,
            "recovery_latency": recovery_latency,
            "degraded": {str(i): lvl for i, lvl in sorted(degraded.items())},
            "attempts": {str(i): n for i, n in
                         sorted(faulted.attempts.items())},
            "sound": sound,
        },
    }


def render(data: Dict[str, Any]) -> str:
    ov, rec = data["overhead"], data["recovery"]
    rows = [
        ["clean (default policy)", f"{ov['base_wall_time']:.2f}", "-", "-"],
        ["clean (armed policy)", f"{ov['armed_wall_time']:.2f}",
         f"{ov['overhead_fraction']:+.1%}", "-"],
        ["faulted (3 clusters)", f"{rec['wall_time']:.2f}",
         f"+{rec['recovery_latency']:.2f}s",
         ", ".join(f"#{i}: {lvl}" for i, lvl in rec["degraded"].items())
         or "none"],
    ]
    table = format_table(
        ["run", "wall (s)", "delta", "degraded"], rows,
        title=f"Resilience ({data['program']}, scale={data['scale']}, "
              f"{data['clusters']} clusters, {data['cpus']} cpu(s))")
    return (table + "\n\n"
            f"policy overhead: {ov['overhead_fraction']:+.1%} "
            f"(budget <5%: {'ok' if ov['within_budget'] else 'EXCEEDED'}); "
            f"degraded supersets sound: "
            f"{'yes' if rec['sound'] else 'NO'}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure resilience-policy overhead and fault "
                    "recovery on the processes backend")
    parser.add_argument("--program", default=LARGEST,
                        help=f"corpus program name (default {LARGEST}, "
                             "the largest)")
    parser.add_argument("--scale", type=float, default=0.006,
                        help="program size fraction (default 0.006)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count (default 2)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="clean runs per configuration, best kept "
                             "(default 2)")
    parser.add_argument("--out", default="BENCH_resilience.json",
                        help="output JSON path "
                             "(default BENCH_resilience.json)")
    args = parser.parse_args(argv)
    data = run_resilience_bench(name=args.program, scale=args.scale,
                                jobs=args.jobs, repeats=args.repeats,
                                verbose=True)
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Fleet benchmark: warm-query throughput scaling and fault identity.

Boots ``repro fleet serve`` as a subprocess (the coordinator must not
share the GIL with the load generator) at 1, 2 and 4 workers over the
sendmail corpus program, drives a concurrent warm-query load through
the asyncio front door, and measures two things:

* **throughput scaling** — queries retired per second of the busiest
  shard's CPU time (read off ``/proc/<pid>/stat``, so the number is
  per-shard cost, not host wall-clock).  On an N-core host wall-clock
  scales too; on the 1-core CI runner only the per-shard accounting
  can show that the hash ring actually spreads the work — the same
  reasoning as ``machine_speedup`` in :mod:`repro.bench.parallel`.
  Wall numbers are recorded transparently alongside.
* **fault identity** — a no-fault fleet answers bit-identically to a
  single daemon (the coordinator's fast path forwards worker bytes
  verbatim); after SIGKILLing one of two workers, every query still
  completes, rerouted answers (and only those) carry the
  ``fleet.rerouted`` envelope, and stripping the envelope recovers
  answers bit-identical to the single daemon's.

Results go to ``BENCH_fleet.json``.  ``--check`` turns the scaling
floors (>= 1.7x at 2 workers, >= 3x at 4) and the identity property
into a gate that exits 1 on failure.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..server import protocol
from ..server.client import ServerClient, wait_for_server
from ..fleet.worker import RESPONSE_LIMIT, LocalWorker
from .corpus import corpus_configs
from .metrics import format_table
from .synth import generate_source

#: Acceptance floors for busy-time throughput scaling vs one worker.
SCALING_FLOORS = {2: 1.7, 4: 3.0}

_FLEET_LISTEN_RE = re.compile(r"listening on tcp:[0-9.]+:(\d+)")


# ----------------------------------------------------------------------
# process plumbing
# ----------------------------------------------------------------------

def _repro_env() -> Dict[str, str]:
    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parts = [pkg_root] + [p for p in
                          env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


def _spawn_fleet(workers: int, cache: str,
                 extra: Sequence[str] = ()) -> Tuple[Any, int]:
    """Start ``repro fleet serve --port 0``; returns (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "fleet", "serve",
         "--port", "0", "--workers", str(workers), "--cache", cache]
        + list(extra),
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=_repro_env(), text=True)
    port: List[int] = []
    deadline = time.monotonic() + 120.0
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"fleet coordinator exited with {proc.returncode} "
                    "before listening")
            continue
        match = _FLEET_LISTEN_RE.search(line)
        if match:
            port.append(int(match.group(1)))
            break
    if not port:
        proc.kill()
        raise RuntimeError("fleet coordinator did not report a port")
    # Keep draining stdout so the coordinator never blocks on the pipe.
    threading.Thread(target=lambda: proc.stdout.read(),
                     daemon=True).start()
    return proc, port[0]


def _proc_cpu_seconds(pid: int) -> Optional[float]:
    """utime+stime of ``pid`` from /proc (None off Linux / dead pid)."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
        # Fields 14/15 (1-based) follow the parenthesized comm, which
        # may itself contain spaces — split after the last ')'.
        fields = stat.rsplit(")", 1)[1].split()
        ticks = int(fields[11]) + int(fields[12])
        return ticks / os.sysconf("SC_CLK_TCK")
    except (OSError, IndexError, ValueError):
        return None


# ----------------------------------------------------------------------
# async load generator
# ----------------------------------------------------------------------

async def _worker_conn(host: str, port: int,
                       frames: "deque[Tuple[int, bytes]]",
                       out: List[Optional[bytes]]) -> None:
    reader, writer = await asyncio.open_connection(
        host, port, limit=RESPONSE_LIMIT)
    try:
        while True:
            try:
                idx, frame = frames.popleft()
            except IndexError:
                return
            writer.write(frame)
            await writer.drain()
            out[idx] = await reader.readline()
    finally:
        writer.close()


async def _blast_async(host: str, port: int, requests: List[Dict[str, Any]],
                       concurrency: int) -> Tuple[float, List[bytes]]:
    frames: "deque[Tuple[int, bytes]]" = deque(
        (i, protocol.encode(r)) for i, r in enumerate(requests))
    out: List[Optional[bytes]] = [None] * len(requests)
    t0 = time.perf_counter()
    await asyncio.gather(*[
        _worker_conn(host, port, frames, out)
        for _ in range(max(1, min(concurrency, len(requests))))])
    wall = time.perf_counter() - t0
    missing = sum(1 for line in out if not line)
    if missing:
        raise RuntimeError(f"{missing} queries got no response")
    return wall, out  # type: ignore[return-value]


def _blast(port: int, requests: List[Dict[str, Any]],
           concurrency: int) -> Tuple[float, List[bytes]]:
    """Drive ``requests`` through ``concurrency`` pipelined connections;
    returns (wall seconds, raw response lines in request order)."""
    return asyncio.run(
        _blast_async("127.0.0.1", port, requests, concurrency))


def _canonical(line: bytes) -> str:
    """A response stripped of volatile fields (timings) and of the
    fleet envelope — the form bit-identity is checked in."""
    obj = protocol.decode(line)
    result = obj.get("result")
    if isinstance(result, dict):
        result = dict(result)
        result.pop("fleet", None)
        result.pop("refresh", None)
        return json.dumps({"id": obj.get("id"), "result": result},
                          sort_keys=True)
    error = dict(obj.get("error") or {})
    data = error.get("data")
    if isinstance(data, dict):
        data = dict(data)
        data.pop("fleet", None)
        error["data"] = data
    return json.dumps({"id": obj.get("id"), "error": error},
                      sort_keys=True)


def _is_rerouted(line: bytes) -> bool:
    obj = protocol.decode(line)
    result = obj.get("result")
    if isinstance(result, dict):
        return bool(result.get("fleet", {}).get("rerouted"))
    data = (obj.get("error") or {}).get("data") or {}
    return bool(data.get("fleet", {}).get("rerouted"))


# ----------------------------------------------------------------------
# the bench
# ----------------------------------------------------------------------

def _request(rid: int, method: str, **params: Any) -> Dict[str, Any]:
    return {"id": rid, "method": method, "params": params}


def _corpus_units(name: str, scale: float,
                  units: int) -> List[Any]:
    """The corpus program split into ``units`` translation units.

    Real corpus programs are many files (sendmail is 115 KLOC); one
    SynthConfig per unit, seed-varied so the units are distinct code,
    each carrying an equal share of the program's pointers.
    """
    base = corpus_configs(scale, names=[name])[0]
    return [dataclasses.replace(
        base, name=f"{name}_tu{i}",
        pointers=max(40, base.pointers // units),
        functions=max(8, base.functions // units),
        kloc=max(1.0, base.kloc / units),
        seed=base.seed + i) for i in range(units)]


def _query_set(pairs: Sequence[Tuple[str, str]],
               paths: Sequence[str]) -> List[Dict[str, Any]]:
    """One of each distinct query: every pointer, some alias pairs, and
    the whole-file passes — the mixed batch the fault run replays."""
    out = [_request(i, "points_to", file=path, ptr=name)
           for i, (path, name) in enumerate(pairs)]
    rid = len(out)
    for i in range(0, len(pairs) - 1, 7):
        path, p = pairs[i]
        path_q, q = pairs[i + 1]
        if path == path_q:
            out.append(_request(rid, "alias", file=path, p=p, q=q))
            rid += 1
    for path in paths:
        for method in ("taint", "leaks", "deadlocks"):
            out.append(_request(rid, method, file=path))
            rid += 1
    return out


def _measure_run(workers: int, cache: str,
                 pairs: Sequence[Tuple[str, str]], queries: int,
                 concurrency: int, verbose: bool) -> Dict[str, Any]:
    """One fleet at ``workers`` workers: warm up, then measure the warm
    points-to load with wall and per-shard CPU accounting."""
    proc, port = _spawn_fleet(workers, cache)
    try:
        wait_for_server(port=port, timeout=120.0)
        warm = [_request(i, "points_to", file=path, ptr=name)
                for i, (path, name) in enumerate(pairs)]
        _blast(port, warm, concurrency=min(8, concurrency))
        with ServerClient(port=port, timeout=60.0) as client:
            status = client.fleet_status()
        pids = {name: info["pid"]
                for name, info in status["workers"].items()}
        cpu0 = {name: _proc_cpu_seconds(pid) or 0.0
                for name, pid in pids.items()}
        # Warm points_to only: every query routes by one cluster key,
        # so the measured spread is exactly the bounded-load placement
        # the coordinator computed (alias pulls a second cluster onto
        # the routed worker, smearing the per-shard accounting).
        load = []
        for i in range(queries):
            path, name = pairs[i % len(pairs)]
            load.append(_request(i, "points_to", file=path, ptr=name))
        wall, lines = _blast(port, load, concurrency)
        cpu1 = {name: _proc_cpu_seconds(pid) or 0.0
                for name, pid in pids.items()}
        errors = sum(1 for line in lines
                     if b'"error"' in line.split(b'"result"')[0])
        busy = {name: max(0.0, cpu1[name] - cpu0[name]) for name in pids}
        max_busy = max(busy.values()) if busy else 0.0
        run = {
            "workers": workers,
            "queries": queries,
            "concurrency": concurrency,
            "errors": errors,
            "wall_seconds": wall,
            "wall_qps": queries / wall if wall else 0.0,
            "worker_busy_cpu_seconds": dict(sorted(busy.items())),
            "max_worker_busy_seconds": max_busy,
            "total_worker_busy_seconds": sum(busy.values()),
            "busy_qps": queries / max_busy if max_busy else 0.0,
        }
        if verbose:
            print(f"  fleet x{workers}: {wall:.2f}s wall "
                  f"({run['wall_qps']:.0f} q/s), busiest shard "
                  f"{max_busy:.2f}s CPU ({run['busy_qps']:.0f} q/s "
                  f"per busy-second)", file=sys.stderr)
        with ServerClient(port=port, timeout=30.0) as client:
            client.shutdown()
        proc.wait(30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(10.0)
    return run


def _fault_run(cache: str, requests: List[Dict[str, Any]],
               concurrency: int, reference: List[str],
               verbose: bool) -> Dict[str, Any]:
    """Two workers, kill one mid-run: every query must still answer,
    only rerouted answers get tagged, and stripping the tag must
    recover the single daemon's exact answers."""
    proc, port = _spawn_fleet(
        2, cache, extra=["--no-respawn", "--breaker-reset", "3600"])
    try:
        wait_for_server(port=port, timeout=120.0)
        _, lines = _blast(port, requests, concurrency)
        no_fault = [_canonical(line) for line in lines]
        no_fault_identical = no_fault == reference
        no_fault_tagged = sum(_is_rerouted(line) for line in lines)

        with ServerClient(port=port, timeout=30.0) as client:
            status = client.fleet_status()
        victim = sorted(status["workers"])[0]
        os.kill(status["workers"][victim]["pid"], signal.SIGKILL)
        time.sleep(0.2)

        _, lines = _blast(port, requests, concurrency)
        after = [_canonical(line) for line in lines]
        tagged = sum(_is_rerouted(line) for line in lines)
        identical = after == reference
        with ServerClient(port=port, timeout=30.0) as client:
            status = client.fleet_status()
            client.shutdown()
        out = {
            "workers": 2,
            "killed": victim,
            "queries": len(requests),
            "no_fault_identical": no_fault_identical,
            "no_fault_tagged": no_fault_tagged,
            "tagged": tagged,
            "untagged": len(requests) - tagged,
            "identical_after_kill": identical,
            "breaker_state": status["workers"][victim]["state"],
            "reroutes": status["reroutes"],
        }
        if verbose:
            print(f"  kill {victim}: {tagged}/{len(requests)} answers "
                  f"rerouted+tagged, identity "
                  f"{'ok' if identical else 'BROKEN'}", file=sys.stderr)
        proc.wait(30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(10.0)
    return out


def run_fleet_bench(name: str = "sendmail", scale: float = 0.04,
                    units: int = 6,
                    workers_list: Sequence[int] = (1, 2, 4),
                    queries: int = 8000, concurrency: int = 8,
                    repeats: int = 2,
                    verbose: bool = False) -> Dict[str, Any]:
    """Measure the fleet on one corpus program; JSON-safe result.

    The program is generated as ``units`` translation units so the
    routing keyspace holds enough clusters for consistent hashing to
    balance (a single synthetic unit yields too few distinct webs for
    the busiest of 4 shards to get near a 1/4 share).

    Scaling is *weak scaling*: the offered load is ``concurrency``
    client connections per worker, so a bigger fleet faces
    proportionally more concurrent clients — the standard methodology,
    and the one that keeps per-connection frame batching comparable
    across fleet sizes (a fixed client count would thin out each
    worker's batches as the fleet grows and misattribute the lost
    batching efficiency to routing).

    Each fleet size is measured ``repeats`` times and the run with the
    least busiest-shard CPU kept: scheduler interference on a shared
    host only ever *adds* CPU to a shard, so the minimum is the
    standard estimator for the undisturbed cost.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as tmp:
        paths: List[str] = []
        pairs: List[Tuple[str, str]] = []
        for config in _corpus_units(name, scale, units):
            source = generate_source(config)
            path = os.path.join(tmp, f"{config.name}.c")
            with open(path, "w") as handle:
                handle.write(source)
            paths.append(path)
            for ptr in sorted(set(re.findall(r"\bw\d+p\d+\b", source))):
                pairs.append((path, ptr))
        cache = os.path.join(tmp, "cache")
        requests = _query_set(pairs, paths)

        # Single-daemon reference: the identity baseline (same shared
        # cache — the fleet's workers must agree with it either way).
        ref = LocalWorker("reference", serve_args=["--cache", cache])
        ref.spawn()
        try:
            wait_for_server(port=ref.port, timeout=60.0)
            _, lines = _blast(ref.port, requests, min(8, concurrency))
            reference = [_canonical(line) for line in lines]
            with ServerClient(port=ref.port, timeout=30.0) as client:
                n_clusters = sum(
                    client.points_to(p, n)["clusters"]["total"]
                    for p, n in (next(pr for pr in pairs
                                      if pr[0] == path)
                                 for path in paths))
        finally:
            ref.terminate()
        if verbose:
            print(f"  [{name}] scale={scale}, {units} translation "
                  f"units: {len(pairs)} query pointers, "
                  f"{n_clusters} clusters", file=sys.stderr)

        runs = []
        for w in workers_list:
            best: Optional[Dict[str, Any]] = None
            attempts = []
            for _ in range(max(1, repeats)):
                run = _measure_run(w, cache, pairs, queries,
                                   concurrency * w, verbose)
                attempts.append(run["max_worker_busy_seconds"])
                if best is None or run["max_worker_busy_seconds"] \
                        < best["max_worker_busy_seconds"]:
                    best = run
            assert best is not None
            best["repeats"] = max(1, repeats)
            best["busy_attempts_seconds"] = attempts
            runs.append(best)
        base = runs[0]["busy_qps"]
        base_wall = runs[0]["wall_qps"]
        for run in runs:
            run["busy_scaling"] = \
                run["busy_qps"] / base if base else 0.0
            run["wall_scaling"] = \
                run["wall_qps"] / base_wall if base_wall else 0.0

        fault = _fault_run(cache, requests, concurrency * 2, reference,
                           verbose)

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    gates = {}
    for run in runs:
        floor = SCALING_FLOORS.get(run["workers"])
        if floor is not None:
            gates[f"scaling_{run['workers']}"] = {
                "value": run["busy_scaling"], "floor": floor,
                "ok": run["busy_scaling"] >= floor,
            }
    gates["identity"] = {
        "ok": fault["no_fault_identical"]
        and fault["identical_after_kill"],
    }
    gates["rerouted_tagging"] = {
        "ok": fault["no_fault_tagged"] == 0 and fault["tagged"] > 0
        and fault["untagged"] > 0,
    }
    return {"program": name, "scale": scale, "translation_units": units,
            "query_pointers": len(pairs), "clusters": n_clusters,
            "cpus": cpus, "accounting": "proc-cpu-seconds",
            "runs": runs, "fault": fault, "gates": gates}


def check_gate(data: Dict[str, Any]) -> List[str]:
    """Failures of the built-in gates, empty when healthy."""
    failures = []
    for key, gate in sorted(data["gates"].items()):
        if not gate["ok"]:
            detail = ""
            if "value" in gate:
                detail = (f": {gate['value']:.2f}x is below the "
                          f"{gate['floor']:.1f}x floor")
            failures.append(f"{key}{detail}")
    return failures


def render(data: Dict[str, Any]) -> str:
    rows = [[str(r["workers"]), f"{r['wall_seconds']:.2f}",
             f"{r['wall_qps']:.0f}", f"{r['max_worker_busy_seconds']:.2f}",
             f"{r['busy_qps']:.0f}", f"{r['busy_scaling']:.2f}x"]
            for r in data["runs"]]
    table = format_table(
        ["workers", "wall (s)", "wall q/s", "busiest shard CPU (s)",
         "busy q/s", "scaling"], rows,
        title=f"Fleet throughput ({data['program']}, "
              f"{data['clusters']} clusters, {data['cpus']} cpu(s), "
              f"per-shard CPU accounting)")
    fault = data["fault"]
    return (table + "\n\n"
            f"kill {fault['killed']} of 2: {fault['tagged']}/"
            f"{fault['queries']} answers rerouted (tagged), identity "
            f"{'preserved' if fault['identical_after_kill'] else 'BROKEN'}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure fleet throughput scaling and fault "
                    "identity")
    parser.add_argument("--program", default="sendmail",
                        help="corpus program name (default sendmail)")
    parser.add_argument("--scale", type=float, default=0.04,
                        help="program size fraction (default 0.04)")
    parser.add_argument("--units", type=int, default=6,
                        help="translation units to split the program "
                             "into (default 6)")
    parser.add_argument("--workers", type=str, default="1,2,4",
                        help="comma-separated worker counts "
                             "(default 1,2,4)")
    # Per-worker CPU is read off /proc at 10ms tick granularity; the
    # warm load must span enough ticks for the scaling ratio to mean
    # anything, hence the large default.
    parser.add_argument("--queries", type=int, default=8000,
                        help="warm queries per measured run "
                             "(default 8000)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="concurrent client connections per worker "
                             "(weak scaling; default 8)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="measured runs per fleet size, keeping "
                             "the one with the least busiest-shard "
                             "CPU (default 2)")
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="output JSON path (default BENCH_fleet.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when a scaling floor or the "
                             "identity property fails")
    args = parser.parse_args(argv)
    workers_list = [int(w) for w in args.workers.split(",") if w]
    data = run_fleet_bench(name=args.program, scale=args.scale,
                           units=args.units, workers_list=workers_list,
                           queries=args.queries,
                           concurrency=args.concurrency,
                           repeats=args.repeats, verbose=True)
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    if args.check:
        failures = check_gate(data)
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("fleet gate: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

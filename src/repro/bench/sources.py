"""Hand-written mini-C benchmark sources.

The paper's corpus is real systems code (drivers, mail agents, servers).
The synthetic IR generator reproduces its *statistics*; the programs here
reproduce its *texture* — struct-heavy driver code, lock discipline,
function-pointer dispatch tables, linked structures, error paths — and
run through the full frontend, so the end-to-end pipeline (lexer to
FSCS) is exercised on something a kernel developer would recognize.

All are self-contained mini-C (the dialect in ``repro.frontend``).
"""

from __future__ import annotations

from typing import Dict, List

CHAR_DEVICE = r"""
/* A miniature character device with open/read/write/ioctl paths. */
struct cdev_state {
    int *lock;
    int *rx_buf;
    int *tx_buf;
    int open_count;
    int flags;
};

int cdev_lock_obj;
struct cdev_state cdev;
int errno_slot;

void lock(int *l) { }
void unlock(int *l) { }

void cdev_init(void) {
    cdev.lock = &cdev_lock_obj;
    cdev.rx_buf = malloc(512);
    cdev.tx_buf = malloc(512);
    cdev.open_count = 0;
    cdev.flags = 0;
}

int cdev_open(int flags) {
    lock(cdev.lock);
    if (cdev.open_count > 4) {
        unlock(cdev.lock);
        return -1;
    }
    cdev.open_count = cdev.open_count + 1;
    cdev.flags = flags;
    unlock(cdev.lock);
    return 0;
}

int cdev_read(int *out) {
    int *buf;
    lock(cdev.lock);
    buf = cdev.rx_buf;
    if (buf == NULL) {
        unlock(cdev.lock);
        return -1;
    }
    *out = *buf;
    unlock(cdev.lock);
    return 0;
}

int cdev_write(int *data) {
    int *buf;
    lock(cdev.lock);
    buf = cdev.tx_buf;
    if (buf != NULL) {
        *buf = *data;
    }
    unlock(cdev.lock);
    return 0;
}

void cdev_release(void) {
    lock(cdev.lock);
    cdev.open_count = cdev.open_count - 1;
    if (cdev.open_count == 0) {
        free(cdev.rx_buf);
        free(cdev.tx_buf);
        cdev.rx_buf = NULL;
        cdev.tx_buf = NULL;
    }
    unlock(cdev.lock);
}

int main() {
    int payload;
    int received;
    cdev_init();
    if (cdev_open(1) != 0) {
        return 1;
    }
    payload = 42;
    cdev_write(&payload);
    cdev_read(&received);
    cdev_release();
    return 0;
}
"""

FOPS_DISPATCH = r"""
/* File-operations dispatch table, the classic kernel pattern. */
struct file;
struct fops {
    int (*open)(struct file *f);
    int (*read)(struct file *f, int *out);
    int (*release)(struct file *f);
};

struct file {
    struct fops *ops;
    int *private_data;
    int mode;
};

int storage_a, storage_b;

int null_open(struct file *f) {
    f->private_data = NULL;
    return 0;
}

int mem_open(struct file *f) {
    f->private_data = &storage_a;
    return 0;
}

int mem_read(struct file *f, int *out) {
    int *data = f->private_data;
    if (data == NULL) {
        return -1;
    }
    *out = *data;
    return 0;
}

int null_read(struct file *f, int *out) {
    *out = 0;
    return 0;
}

int common_release(struct file *f) {
    f->private_data = NULL;
    return 0;
}

struct fops mem_fops;
struct fops null_fops;

void register_fops(void) {
    mem_fops.open = mem_open;
    mem_fops.read = mem_read;
    mem_fops.release = common_release;
    null_fops.open = null_open;
    null_fops.read = null_read;
    null_fops.release = common_release;
}

int dispatch(struct file *f, int *out) {
    int rc = f->ops->open(f);
    if (rc != 0) {
        return rc;
    }
    rc = f->ops->read(f, out);
    f->ops->release(f);
    return rc;
}

int main() {
    struct file fmem;
    struct file fnull;
    int value;
    register_fops();
    fmem.ops = &mem_fops;
    fnull.ops = &null_fops;
    dispatch(&fmem, &value);
    dispatch(&fnull, &value);
    return 0;
}
"""

SLAB_CACHE = r"""
/* A tiny slab-style allocator with a free list. */
struct slab {
    struct slab *next;
    int *payload;
    int in_use;
};

struct slab *free_list;
int slab_lock_obj;
int *slab_lock;

void lock(int *l) { }
void unlock(int *l) { }

struct slab *slab_alloc(void) {
    struct slab *s;
    lock(slab_lock);
    if (free_list != NULL) {
        s = free_list;
        free_list = s->next;
    } else {
        s = (struct slab *)malloc(24);
        s->payload = malloc(64);
    }
    s->in_use = 1;
    s->next = NULL;
    unlock(slab_lock);
    return s;
}

void slab_free(struct slab *s) {
    lock(slab_lock);
    s->in_use = 0;
    s->next = free_list;
    free_list = s;
    unlock(slab_lock);
}

int main() {
    struct slab *a;
    struct slab *b;
    int i;
    slab_lock = &slab_lock_obj;
    free_list = NULL;
    for (i = 0; i < 8; i++) {
        a = slab_alloc();
        b = slab_alloc();
        slab_free(a);
        slab_free(b);
    }
    a = slab_alloc();
    int *data = a->payload;
    return 0;
}
"""

EVENT_QUEUE = r"""
/* Producer/consumer event queue guarded by one lock; the consumer has a
   deliberate unlocked fast path on a shared counter (a race). */
struct event {
    struct event *next;
    int kind;
    int *arg;
};

struct event *queue_head;
int queue_lock_obj;
int *queue_lock;
int pending_count;
int processed_count;
int total_events;
int payload_cell;

void lock(int *l) { }
void unlock(int *l) { }

void producer(void) {
    struct event *e = (struct event *)malloc(24);
    e->kind = 1;
    e->arg = &payload_cell;
    lock(queue_lock);
    e->next = queue_head;
    queue_head = e;
    pending_count = pending_count + 1;
    unlock(queue_lock);
    /* Unlocked stats update: reads processed_count without the lock,
       racing with the consumer's unlocked increment. */
    total_events = processed_count + 1;
}

void consumer(void) {
    struct event *e;
    lock(queue_lock);
    e = queue_head;
    if (e != NULL) {
        queue_head = e->next;
        pending_count = pending_count - 1;
    }
    unlock(queue_lock);
    processed_count = processed_count + 1;   /* unlocked: races */
    if (e != NULL) {
        int *arg = e->arg;
        if (arg != NULL) {
            *arg = 0;
        }
    }
}

int main() {
    queue_lock = &queue_lock_obj;
    queue_head = NULL;
    producer();
    producer();
    consumer();
    consumer();
    return 0;
}
"""

STRING_TABLE = r"""
/* An interning table: open hashing with chained buckets. */
struct entry {
    struct entry *chain;
    int *key;
    int refcount;
};

struct entry *buckets0;
struct entry *buckets1;
struct entry *buckets2;
int key_a, key_b, key_c;

struct entry *table_get(int h, int *key) {
    struct entry *cursor;
    if (h == 0) {
        cursor = buckets0;
    } else {
        if (h == 1) {
            cursor = buckets1;
        } else {
            cursor = buckets2;
        }
    }
    while (cursor != NULL) {
        if (cursor->key == key) {
            cursor->refcount = cursor->refcount + 1;
            return cursor;
        }
        cursor = cursor->chain;
    }
    return NULL;
}

struct entry *table_put(int h, int *key) {
    struct entry *found = table_get(h, key);
    if (found != NULL) {
        return found;
    }
    struct entry *fresh = (struct entry *)malloc(24);
    fresh->key = key;
    fresh->refcount = 1;
    if (h == 0) {
        fresh->chain = buckets0;
        buckets0 = fresh;
    } else {
        if (h == 1) {
            fresh->chain = buckets1;
            buckets1 = fresh;
        } else {
            fresh->chain = buckets2;
            buckets2 = fresh;
        }
    }
    return fresh;
}

int main() {
    struct entry *e1 = table_put(0, &key_a);
    struct entry *e2 = table_put(1, &key_b);
    struct entry *e3 = table_put(0, &key_a);
    int *k = e3->key;
    return 0;
}
"""

RING_BUFFER = r"""
/* An SPSC ring buffer of pointer payloads with watermark callbacks. */
struct ring {
    int *slots0;
    int *slots1;
    int *slots2;
    int *slots3;
    int head;
    int tail;
    void (*on_full)(void);
    void (*on_empty)(void);
};

struct ring rb;
int overflow_count, underflow_count;
int item_a, item_b;

void note_full(void)  { overflow_count = overflow_count + 1; }
void note_empty(void) { underflow_count = underflow_count + 1; }

void rb_init(void) {
    rb.head = 0;
    rb.tail = 0;
    rb.on_full = note_full;
    rb.on_empty = note_empty;
    rb.slots0 = NULL;
    rb.slots1 = NULL;
    rb.slots2 = NULL;
    rb.slots3 = NULL;
}

int rb_push(int *item) {
    if (rb.head - rb.tail >= 4) {
        rb.on_full();
        return -1;
    }
    switch (rb.head % 4) {
    case 0: rb.slots0 = item; break;
    case 1: rb.slots1 = item; break;
    case 2: rb.slots2 = item; break;
    default: rb.slots3 = item; break;
    }
    rb.head = rb.head + 1;
    return 0;
}

int *rb_pop(void) {
    int *out;
    if (rb.head == rb.tail) {
        rb.on_empty();
        return NULL;
    }
    switch (rb.tail % 4) {
    case 0: out = rb.slots0; break;
    case 1: out = rb.slots1; break;
    case 2: out = rb.slots2; break;
    default: out = rb.slots3; break;
    }
    rb.tail = rb.tail + 1;
    return out;
}

int main() {
    rb_init();
    rb_push(&item_a);
    rb_push(&item_b);
    int *first = rb_pop();
    int *second = rb_pop();
    int *drained = rb_pop();   /* NULL path */
    if (drained != NULL) {
        *drained = 0;
    }
    return 0;
}
"""

PROTO_FSM = r"""
/* A little protocol state machine driven by a handler table. */
struct conn;
struct conn {
    int state;
    int *(*handler)(struct conn *c);
    int *rx;
    int *last_error;
};

int err_proto, err_closed;
int inbox;

int *h_idle(struct conn *c);
int *h_open(struct conn *c);
int *h_closed(struct conn *c);

int *h_idle(struct conn *c) {
    c->state = 1;
    c->handler = h_open;
    c->rx = &inbox;
    return NULL;
}

int *h_open(struct conn *c) {
    if (c->rx == NULL) {
        c->last_error = &err_proto;
        c->handler = h_closed;
        return c->last_error;
    }
    c->state = 2;
    c->handler = h_closed;
    return NULL;
}

int *h_closed(struct conn *c) {
    c->last_error = &err_closed;
    return c->last_error;
}

int *step(struct conn *c) {
    return c->handler(c);
}

int main() {
    struct conn c;
    c.state = 0;
    c.handler = h_idle;
    c.rx = NULL;
    c.last_error = NULL;
    int *e1 = step(&c);
    int *e2 = step(&c);
    int *e3 = step(&c);
    return 0;
}
"""

#: Every embedded source, keyed by a short name.
SOURCES: Dict[str, str] = {
    "char_device": CHAR_DEVICE,
    "fops_dispatch": FOPS_DISPATCH,
    "slab_cache": SLAB_CACHE,
    "event_queue": EVENT_QUEUE,
    "string_table": STRING_TABLE,
    "ring_buffer": RING_BUFFER,
    "proto_fsm": PROTO_FSM,
}


def names() -> List[str]:
    return sorted(SOURCES)


def source(name: str) -> str:
    return SOURCES[name]


def load(name: str):
    """Parse one embedded source into a :class:`~repro.ir.Program`."""
    from ..frontend import parse_program
    return parse_program(SOURCES[name])

"""Benchmark workloads and harnesses for the paper's tables and figures."""

from .cascade import run_cascade_bench
from .corpus import (
    HIGHLIGHTS,
    PAPER_BY_NAME,
    PAPER_TABLE1,
    PaperRow,
    autofs_like,
    build,
    corpus_configs,
    fp_heavy,
    fp_heavy_config,
)
from .demand import run_demand_bench
from .figure1 import Figure1Data, compute_figure1, run_figure1
from .parallel import run_parallel_bench
from .profile_solvers import run_kernel_bench
from .resilience import run_resilience_bench
from .metrics import (
    TIMEOUT,
    Timed,
    ascii_histogram,
    format_csv,
    format_table,
    ratio,
    timed,
    timed_with_budget,
)
from .synth import SynthConfig, SynthProgram, generate, generate_source
from .table1 import Table1Row, measure_program, run_table1, shape_report
from .taint import run_taint_bench

__all__ = [
    "HIGHLIGHTS", "PAPER_BY_NAME", "PAPER_TABLE1", "PaperRow", "TIMEOUT",
    "Table1Row", "Timed", "Figure1Data", "SynthConfig", "SynthProgram",
    "ascii_histogram", "autofs_like", "build", "compute_figure1",
    "corpus_configs", "format_csv", "format_table", "fp_heavy",
    "fp_heavy_config", "generate",
    "generate_source", "measure_program", "ratio", "run_cascade_bench",
    "run_demand_bench",
    "run_figure1", "run_kernel_bench",
    "run_parallel_bench", "run_resilience_bench", "run_table1",
    "run_taint_bench",
    "shape_report", "timed",
    "timed_with_budget",
]

"""repro — Bootstrapped flow- and context-sensitive pointer alias analysis.

A from-scratch reproduction of Kahlon, *"Bootstrapping: a technique for
scalable flow and context-sensitive pointer alias analysis"* (PLDI 2008):
a mini-C frontend, a normalized pointer IR, Steensgaard / One-Flow /
Andersen / FSCI / summary-based FSCS analyses, the bootstrapping cascade
that strings them together, a parallel cluster scheduler, a lockset-based
race detector built on demand-driven alias queries, and a benchmark
harness regenerating the paper's Table 1 and Figures 1-5.

Quickstart::

    from repro import parse_program, BootstrapAnalyzer

    prog = parse_program(source_code)
    result = BootstrapAnalyzer(prog).run()
    result.may_alias(p, q, loc)
"""

from .analysis import (
    FSCI,
    Andersen,
    ClusterFSCS,
    OneFlow,
    Steensgaard,
    whole_program_fscs,
)
from .core import (
    BootstrapAnalyzer,
    BootstrapConfig,
    CascadeConfig,
    Cluster,
    ParallelRunner,
    Partitioning,
    relevant_statements,
    run_cascade,
    select_clusters,
)
from .errors import (
    AnalysisBudgetExceeded,
    NormalizationError,
    ParseError,
    ReproError,
)
from .ir import Loc, Program, ProgramBuilder, Var

__version__ = "1.0.0"

__all__ = [
    "Andersen", "AnalysisBudgetExceeded", "BootstrapAnalyzer",
    "BootstrapConfig", "CascadeConfig", "Cluster", "ClusterFSCS", "FSCI",
    "Loc", "NormalizationError", "OneFlow", "ParallelRunner", "ParseError",
    "Partitioning", "Program", "ProgramBuilder", "ReproError", "Steensgaard",
    "Var", "parse_program", "relevant_statements", "run_cascade",
    "select_clusters", "whole_program_fscs", "__version__",
]


def parse_program(source: str, entry: str = "main") -> Program:
    """Parse mini-C source into a normalized :class:`Program`.

    Imported lazily so IR-only users don't pay for the frontend.
    """
    from .frontend import parse_program as _parse
    return _parse(source, entry=entry)

"""The alias query daemon: a threaded socket server over the stores.

:class:`AliasServer` separates protocol handling (``handle_line`` /
``handle_request`` — pure request-dict to response-dict, unit-testable
without sockets) from transport (``serve_forever`` over a Unix socket or
TCP).  Each client connection gets a thread; per-file locks in the
:class:`~repro.server.store.FileStore` serialize reloads of one file
while queries on other files proceed concurrently.

Shutdown is graceful: a ``shutdown`` request, SIGTERM or SIGINT stops
the accept loop and drains in-flight requests (``block_on_close`` joins
the per-connection threads) before the socket is removed.
"""

from __future__ import annotations

import os
import signal
import socket
import socketserver
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..errors import AnalysisBudgetExceeded, ReproError
from . import protocol
from .protocol import PROTOCOL_VERSION, RequestError
from .store import FileStore, ServerConfig


def _package_version() -> str:
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        from .. import __version__
        return __version__


class AliasServer:
    """Dispatch alias/diagnostic queries against the file store."""

    def __init__(self, config: Optional[ServerConfig] = None,
                 socket_path: Optional[str] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None) -> None:
        if socket_path is not None and port is not None:
            raise ValueError("pass either socket_path or port, not both")
        self.config = config or ServerConfig()
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.files = FileStore(self.config)
        self.started = time.time()
        self._monotonic0 = time.perf_counter()
        self._stats_lock = threading.Lock()
        self._tls = threading.local()
        self._method_count: Dict[str, int] = {}
        self._method_seconds: Dict[str, float] = {}
        self._errors = 0
        self._draining = False
        self._server: Optional[socketserver.BaseServer] = None
        self._methods: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "ping": self._m_ping,
            "points_to": self._m_points_to,
            "alias": self._m_alias,
            "must_alias": self._m_must_alias,
            "diagnostics": self._m_diagnostics,
            "taint": self._m_taint,
            "leaks": self._m_leaks,
            "deadlocks": self._m_deadlocks,
            "invalidate": self._m_invalidate,
            "stats": self._m_stats,
            "shutdown": self._m_shutdown,
        }

    # ------------------------------------------------------------------
    # request handling (transport-independent)
    # ------------------------------------------------------------------
    def handle_line(self, line: bytes) -> bytes:
        """One wire frame in, one wire frame out."""
        try:
            request = protocol.decode(line)
        except RequestError as exc:
            return protocol.encode(
                protocol.err(None, exc.code, str(exc), exc.data))
        return protocol.encode(self.handle_request(request))

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request object to a response object."""
        request_id = request.get("id") if isinstance(request, dict) else None
        t0 = time.perf_counter()
        method = "?"
        deadline: Optional[float] = None
        try:
            request_id, method, params = protocol.validate_request(request)
            deadline = protocol.request_deadline(request)
            if self._draining and method != "stats":
                raise RequestError(protocol.SHUTTING_DOWN,
                                   "server is shutting down")
            handler = self._methods.get(method)
            if handler is None:
                raise RequestError(
                    protocol.METHOD_NOT_FOUND,
                    f"unknown method {method!r} "
                    f"(have: {', '.join(sorted(self._methods))})")
            budget = protocol.remaining(deadline)
            if budget is not None and budget <= 0:
                # Expired in the queue: shed before any analysis runs.
                error = protocol.deadline_err(
                    request_id, deadline, "worker")["error"]
                raise RequestError(error["code"], error["message"],
                                   error.get("data"))
            self._tls.deadline = deadline
            try:
                result = handler(params)
            finally:
                self._tls.deadline = None
            response = protocol.ok(request_id, result)
        except RequestError as exc:
            self._count_error()
            response = protocol.err(request_id, exc.code, str(exc), exc.data)
        except AnalysisBudgetExceeded as exc:
            self._count_error()
            response = protocol.err(
                request_id, protocol.BUDGET_EXCEEDED, str(exc),
                {"analysis": exc.analysis, "steps": exc.steps})
        except ReproError as exc:
            self._count_error()
            response = protocol.err(
                request_id, protocol.ANALYSIS_ERROR, str(exc))
        except Exception as exc:  # noqa: BLE001 - the daemon must not die
            self._count_error()
            response = protocol.err(
                request_id, protocol.INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}")
        budget = protocol.remaining(deadline)
        if budget is not None and budget <= 0:
            # Expired mid-solve: the caller stopped waiting, so a late
            # answer (or a late error from the aborted solve) becomes
            # the same structured shed every other hop produces — never
            # a partial or untagged result.
            if "error" not in response:
                self._count_error()
            response = protocol.deadline_err(request_id, deadline,
                                             "worker")
        with self._stats_lock:
            self._method_count[method] = \
                self._method_count.get(method, 0) + 1
            self._method_seconds[method] = \
                self._method_seconds.get(method, 0.0) \
                + (time.perf_counter() - t0)
        return response

    def _count_error(self) -> None:
        with self._stats_lock:
            self._errors += 1

    # ------------------------------------------------------------------
    # methods
    # ------------------------------------------------------------------
    @staticmethod
    def _param(params: Dict[str, Any], name: str) -> str:
        value = params.get(name)
        if not isinstance(value, str) or not value:
            raise RequestError(protocol.INVALID_PARAMS,
                               f"missing string param {name!r}")
        return value

    def _state(self, params: Dict[str, Any]) -> Any:
        """The file state for ``params["file"]``, loaded under the
        current request's deadline (if any) so an in-flight solve
        aborts when its caller's budget runs out."""
        return self.files.get(self._param(params, "file"),
                              deadline=getattr(self._tls, "deadline",
                                               None))

    def _m_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "protocol": PROTOCOL_VERSION,
                "version": _package_version(), "pid": os.getpid()}

    def _m_points_to(self, params: Dict[str, Any]) -> Dict[str, Any]:
        state = self._state(params)
        state.queries += 1
        return state.points_to(self._param(params, "ptr"))

    def _m_alias(self, params: Dict[str, Any]) -> Dict[str, Any]:
        state = self._state(params)
        state.queries += 1
        return state.may_alias(self._param(params, "p"),
                               self._param(params, "q"))

    def _m_must_alias(self, params: Dict[str, Any]) -> Dict[str, Any]:
        state = self._state(params)
        state.queries += 1
        return state.must_alias(self._param(params, "p"),
                                self._param(params, "q"))

    def _m_diagnostics(self, params: Dict[str, Any]) -> Dict[str, Any]:
        state = self._state(params)
        state.queries += 1
        checkers = params.get("checkers")
        if checkers is not None and (
                not isinstance(checkers, list)
                or not all(isinstance(c, str) for c in checkers)):
            raise RequestError(protocol.INVALID_PARAMS,
                               "checkers must be a list of names")
        return state.diagnostics(checkers)

    def _m_taint(self, params: Dict[str, Any]) -> Dict[str, Any]:
        state = self._state(params)
        state.queries += 1
        spec = params.get("spec")
        if spec is not None and not isinstance(spec, dict):
            raise RequestError(protocol.INVALID_PARAMS,
                               "spec must be a JSON object "
                               "(sources/sinks/sanitizers)")
        return state.taint(spec)

    def _m_leaks(self, params: Dict[str, Any]) -> Dict[str, Any]:
        state = self._state(params)
        state.queries += 1
        return state.leaks()

    def _m_deadlocks(self, params: Dict[str, Any]) -> Dict[str, Any]:
        state = self._state(params)
        state.queries += 1
        threads = params.get("threads")
        if threads is not None and (
                not isinstance(threads, list)
                or not all(isinstance(t, str) for t in threads)):
            raise RequestError(protocol.INVALID_PARAMS,
                               "threads must be a list of function names")
        return state.deadlocks(threads)

    def _m_invalidate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        state = self.files.invalidate(self._param(params, "file"))
        out = state.refresh.to_dict()
        out["file"] = state.path
        return out

    def _m_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        with self._stats_lock:
            requests = {
                method: {
                    "count": count,
                    "seconds": self._method_seconds.get(method, 0.0),
                    "avg_ms": 1000.0 * self._method_seconds.get(method, 0.0)
                    / count,
                }
                for method, count in sorted(self._method_count.items())
            }
            errors = self._errors
        return {
            "protocol": PROTOCOL_VERSION,
            "version": _package_version(),
            "uptime_seconds": time.perf_counter() - self._monotonic0,
            "draining": self._draining,
            "requests": requests,
            "errors": errors,
            "files": {
                "loaded": len(self.files.paths()),
                "max": self.config.max_files,
                "loads": self.files.loads,
                "invalidations": self.files.invalidations,
                "detail": [s.summary() for s in self.files.states()],
            },
            "clusters": self.files.clusters.stats(),
        }

    def _m_shutdown(self, params: Dict[str, Any]) -> Dict[str, Any]:
        self._draining = True
        self.request_shutdown()
        return {"shutting_down": True}

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def preload(self, paths: List[str]) -> List[Dict[str, Any]]:
        """Analyze the given files before accepting connections."""
        return [self.files.get(path).summary() for path in paths]

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    def _make_server(self) -> socketserver.BaseServer:
        alias_server = self

        class Handler(socketserver.BaseRequestHandler):
            # A manual line loop (instead of StreamRequestHandler's
            # rfile iteration) so idle connections notice draining: the
            # short recv timeout is a drain poll, not a client deadline.
            # Malformed or oversized lines get structured error
            # responses — the connection thread survives both.
            def handle(self) -> None:
                self.request.settimeout(0.2)
                max_bytes = alias_server.config.max_request_bytes
                buf = b""
                discarding = False  # inside an oversized line
                while True:
                    try:
                        chunk = self.request.recv(65536)
                    except socket.timeout:
                        if alias_server._draining:
                            return
                        continue
                    except OSError:
                        return
                    if not chunk:
                        return
                    buf += chunk
                    while b"\n" in buf:
                        line, buf = buf.split(b"\n", 1)
                        if discarding:
                            # The tail of a line already rejected as too
                            # large; resync at its newline.
                            discarding = False
                            continue
                        if not line.strip():
                            continue
                        if len(line) > max_bytes:
                            # A complete oversized line that fit in one
                            # recv chunk (limits below the chunk size
                            # would otherwise slip through the
                            # buffer-growth check below).
                            try:
                                self.request.sendall(protocol.encode(
                                    protocol.err(
                                        None, protocol.REQUEST_TOO_LARGE,
                                        "request line exceeds "
                                        f"{max_bytes} bytes",
                                        {"max_request_bytes": max_bytes})))
                            except OSError:
                                return
                            continue
                        try:
                            response = alias_server.handle_line(line)
                        except Exception as exc:  # noqa: BLE001
                            response = protocol.encode(protocol.err(
                                None, protocol.INTERNAL_ERROR,
                                f"{type(exc).__name__}: {exc}"))
                        try:
                            self.request.sendall(response)
                        except OSError:
                            return
                    if not discarding and len(buf) > max_bytes:
                        try:
                            self.request.sendall(protocol.encode(
                                protocol.err(
                                    None, protocol.REQUEST_TOO_LARGE,
                                    "request line exceeds "
                                    f"{max_bytes} bytes",
                                    {"max_request_bytes": max_bytes})))
                        except OSError:
                            return
                        buf = b""
                        discarding = True

        if self.socket_path is not None:
            base = getattr(socketserver, "UnixStreamServer", None)
            if base is None:
                raise RuntimeError(
                    "Unix sockets are unavailable on this platform; "
                    "serve on TCP with --port instead")

            class UnixServer(socketserver.ThreadingMixIn, base):
                daemon_threads = False
                block_on_close = True

            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            return UnixServer(self.socket_path, Handler)
        if self.port is None:
            raise ValueError("serve needs a socket path or a TCP port")

        class TCPServer(socketserver.ThreadingMixIn,
                        socketserver.TCPServer):
            daemon_threads = False
            block_on_close = True
            allow_reuse_address = True

        return TCPServer((self.host, self.port), Handler)

    def bind(self) -> str:
        """Create and bind the listening socket (idempotent); returns
        the bound address — for TCP port 0 this resolves the
        kernel-chosen ephemeral port."""
        if self._server is None:
            self._server = self._make_server()
            if self.port == 0:
                self.port = self._server.server_address[1]
        return self.address

    def serve_forever(self, install_signal_handlers: bool = True,
                      ready: Optional[threading.Event] = None) -> None:
        """Bind (if needed), serve until shut down, then drain and clean
        up.

        ``ready`` (for in-process embedding: tests, the bench) is set
        once the socket is bound and the accept loop is about to start.
        """
        self.bind()
        if install_signal_handlers:
            self._install_signal_handlers()
        try:
            if ready is not None:
                ready.set()
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            self._server = None
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass

    def request_shutdown(self) -> None:
        """Stop accepting and drain; safe from handler threads and
        signal handlers (the blocking ``shutdown`` runs off-thread)."""
        self._draining = True
        server = self._server
        if server is not None:
            threading.Thread(target=server.shutdown, daemon=True).start()

    def _install_signal_handlers(self) -> None:
        def handler(signum: int, frame: Any) -> None:
            self.request_shutdown()

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(sig, handler)
            except ValueError:
                # Not the main thread (in-process embedding); the caller
                # controls shutdown instead.
                return


def probe(socket_path: Optional[str] = None, host: str = "127.0.0.1",
          port: Optional[int] = None, timeout: float = 1.0) -> bool:
    """Can a connection be opened to the given address right now?"""
    try:
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        else:
            sock = socket.create_connection((host, port or 0),
                                            timeout=timeout)
        sock.close()
        return True
    except OSError:
        return False

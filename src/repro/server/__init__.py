"""Persistent alias-analysis query daemon.

The paper decomposes FSCS alias analysis into small independent clusters
— which also makes clusters the natural unit of *incrementality* and
*demand*: an edit invalidates only the clusters whose sliced
sub-programs (and hence payload fingerprints) changed, and a client
query needs only the clusters containing its pointers.  This package
turns that observation into a long-running server:

* :mod:`~repro.server.protocol` — the JSON-lines request/response
  protocol and its error codes;
* :mod:`~repro.server.store` — the in-memory LRU cluster-outcome store
  (keyed by :func:`~repro.core.shipping.payload_fingerprint`, optionally
  backed by the on-disk :class:`~repro.core.summary_cache.SummaryCache`)
  and the per-file analysis state with incremental invalidation;
* :mod:`~repro.server.daemon` — the threaded Unix-socket/TCP server
  (``repro serve``) with graceful SIGTERM draining;
* :mod:`~repro.server.client` — the Python client API behind
  ``repro query``.
"""

from .client import ConnectError, ServerClient, wait_for_server
from .daemon import AliasServer
from .protocol import PROTOCOL_VERSION, RequestError, ServerError
from .store import ClusterStore, FileStore, RefreshStats, ServerConfig

__all__ = [
    "AliasServer", "ClusterStore", "ConnectError", "FileStore",
    "PROTOCOL_VERSION", "RefreshStats", "RequestError", "ServerClient",
    "ServerConfig", "ServerError", "wait_for_server",
]

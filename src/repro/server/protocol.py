"""The daemon's wire protocol: one JSON object per line.

A request is ``{"id": ..., "method": "...", "params": {...}}``; the
response echoes the ``id`` with either a ``"result"`` or an ``"error"``
object (``{"code", "message", "data"?}``), framed by newlines so both
ends can stream over a single connection.  All standard codes keep
their JSON-RPC values; analysis-specific failures get codes in the
implementation-defined ``-32000`` block so clients can tell a budget
overrun from a genuine server bug.

Requests may carry an optional ``"v"`` field naming the protocol
version the sender speaks; a daemon that receives a mismatched version
rejects the request with a structured :data:`VERSION_MISMATCH` error
instead of mis-parsing it.  The fleet coordinator stamps ``"v"`` on
every frame it forwards, so a worker from a different release refuses
shard traffic loudly rather than answering with stale semantics.

Fleet responses additionally carry a shard-aware *envelope* under the
``"fleet"`` key of the result (:func:`with_envelope`): which worker
answered, the shard key the request was routed by, whether the answer
was **rerouted** off its home shard because that shard's circuit
breaker was open, and whether it was won by a **hedged** duplicate
issued when the home shard sat past the hedge delay.  Rerouted and
hedged answers follow the resilience ladder's tagged-never-cached
semantics: the envelope is attached on the way out and never stored,
so a healed shard serves untagged answers again.

Requests may also carry an optional ``"deadline"`` field: an *absolute*
wall-clock time (``time.time()`` seconds) after which the caller no
longer wants the answer.  Every hop — client, coordinator queue,
worker, cluster solver — checks the remaining budget
(:func:`remaining`) and sheds expired work with a structured
:data:`DEADLINE_EXCEEDED` error instead of computing an answer nobody
is waiting for.  A request that expires mid-solve gets the same error,
never a partial or untagged answer.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import ReproError

#: Bump on incompatible protocol changes; echoed by ``ping`` and
#: ``stats`` so clients can refuse to talk to a mismatched daemon.
PROTOCOL_VERSION = 1

# JSON-RPC standard codes.
PARSE_ERROR = -32700        # request line is not valid JSON
INVALID_REQUEST = -32600    # JSON but not a valid request object
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# Implementation-defined codes (-32000..-32099).
BUDGET_EXCEEDED = -32001    # AnalysisBudgetExceeded during analysis
ANALYSIS_ERROR = -32002     # target file fails to parse/normalize
FILE_ERROR = -32003         # target file unreadable
SHUTTING_DOWN = -32004      # request arrived while draining
REQUEST_TOO_LARGE = -32005  # request line exceeds the size limit
OVERLOADED = -32006         # admission control rejected the request
SHARD_UNAVAILABLE = -32007  # no worker can serve the shard right now
VERSION_MISMATCH = -32008   # request "v" differs from PROTOCOL_VERSION
DEADLINE_EXCEEDED = -32009  # the request's end-to-end deadline expired

#: Default upper bound on one request line (``ServerConfig.
#: max_request_bytes`` tunes it per daemon).  A client that streams an
#: unbounded line would otherwise grow the connection buffer without
#: limit; the daemon answers ``REQUEST_TOO_LARGE`` and discards through
#: the next newline instead of dying (or swallowing the memory).
MAX_REQUEST_BYTES = 4 * 1024 * 1024


class RequestError(ReproError):
    """A request the server rejects with a structured error response."""

    def __init__(self, code: int, message: str,
                 data: Optional[Any] = None) -> None:
        self.code = code
        self.data = data
        super().__init__(message)


class ServerError(ReproError):
    """Client-side mirror of an error response."""

    def __init__(self, code: int, message: str,
                 data: Optional[Any] = None) -> None:
        self.code = code
        self.data = data
        super().__init__(f"server error {code}: {message}")


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol frame: compact JSON plus the newline terminator."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one frame; :class:`RequestError` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise RequestError(PARSE_ERROR, f"invalid JSON: {exc}")
    if not isinstance(obj, dict):
        raise RequestError(INVALID_REQUEST, "request must be an object")
    return obj


def validate_request(obj: Dict[str, Any]
                     ) -> Tuple[Any, str, Dict[str, Any]]:
    """``(id, method, params)`` of a request object, or
    :class:`RequestError`."""
    version = obj.get("v")
    if version is not None and version != PROTOCOL_VERSION:
        raise RequestError(
            VERSION_MISMATCH,
            f"request speaks protocol {version!r}, "
            f"this server speaks {PROTOCOL_VERSION}",
            {"expected": PROTOCOL_VERSION, "got": version})
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        raise RequestError(INVALID_REQUEST, "missing method")
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise RequestError(INVALID_PARAMS, "params must be an object")
    return obj.get("id"), method, params


def request_deadline(obj: Dict[str, Any]) -> Optional[float]:
    """The request's absolute deadline (``time.time()`` seconds), or
    ``None``; a malformed value is rejected loudly rather than letting
    a request run unbounded by accident."""
    deadline = obj.get("deadline")
    if deadline is None:
        return None
    if not isinstance(deadline, (int, float)) \
            or isinstance(deadline, bool):
        raise RequestError(INVALID_REQUEST,
                           "deadline must be a unix timestamp (seconds)")
    return float(deadline)


def remaining(deadline: Optional[float]) -> Optional[float]:
    """Seconds of budget left before ``deadline`` (may be negative);
    ``None`` when no deadline applies."""
    if deadline is None:
        return None
    return deadline - time.time()


def deadline_err(request_id: Any,
                 deadline: float, where: str) -> Dict[str, Any]:
    """The structured ``DEADLINE_EXCEEDED`` response every hop sheds
    expired requests with; ``where`` names the hop (``client`` /
    ``coordinator`` / ``worker``) so a trace shows where the budget
    ran out."""
    overdue = time.time() - deadline
    return err(request_id, DEADLINE_EXCEEDED,
               f"deadline exceeded {overdue:.3f}s ago (shed at "
               f"{where})",
               {"deadline": deadline, "overdue_seconds": overdue,
                "where": where})


def ok(request_id: Any, result: Any) -> Dict[str, Any]:
    return {"id": request_id, "result": result}


def err(request_id: Any, code: int, message: str,
        data: Optional[Any] = None) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"id": request_id, "error": error}


def envelope(worker: str, key: Optional[str] = None,
             rerouted: bool = False,
             home: Optional[str] = None,
             hedged: bool = False) -> Dict[str, Any]:
    """The shard-aware envelope the fleet coordinator attaches to
    responses: which worker answered, the shard key the request was
    routed by, whether the answer was won by a hedged duplicate, and —
    when the traffic was moved off its home shard (breaker reroute or
    a winning hedge) — the home worker it was moved off."""
    out: Dict[str, Any] = {"worker": worker, "v": PROTOCOL_VERSION,
                           "rerouted": bool(rerouted)}
    if hedged:
        out["hedged"] = True
    if key is not None:
        out["key"] = key
    if (rerouted or hedged) and home is not None:
        out["home"] = home
    return out


def with_envelope(response: Dict[str, Any],
                  fleet: Dict[str, Any]) -> Dict[str, Any]:
    """``response`` with the fleet envelope attached.  Results carry it
    under ``result.fleet``; errors under ``error.data.fleet`` — either
    way the un-enveloped payload is untouched, so stripping the key
    recovers the worker's exact answer (the bit-identity the fleet
    bench checks)."""
    out = dict(response)
    if isinstance(out.get("result"), dict):
        result = dict(out["result"])
        result["fleet"] = fleet
        out["result"] = result
    elif isinstance(out.get("error"), dict):
        error = dict(out["error"])
        data = dict(error.get("data") or {})
        data["fleet"] = fleet
        error["data"] = data
        out["error"] = error
    return out

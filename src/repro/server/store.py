"""Server-side state: cluster outcomes (LRU) and per-file analyses.

Two stores back the daemon:

* :class:`ClusterStore` — a thread-safe in-memory LRU of per-cluster
  analysis outcomes keyed by
  :func:`~repro.core.shipping.payload_fingerprint`, optionally backed by
  the on-disk :class:`~repro.core.summary_cache.SummaryCache` (PR 2) so
  a daemon restart warm-starts from disk.  It is duck-compatible with
  the ``cache`` argument of
  :meth:`~repro.core.bootstrap.BootstrapResult.analyze_all`, which is
  exactly how incremental re-analysis works: a reload re-runs *only* the
  clusters whose fingerprints miss the store.
* :class:`FileStore` — an LRU of :class:`FileState` (parsed program +
  bootstrap result + per-cluster outcomes) keyed by absolute path, with
  one lock per file so concurrent queries on different files proceed in
  parallel while a reload of one file is serialized.

Invalidation is fingerprint-based end to end: ``invalidate`` (or a
changed mtime/content hash observed at query time) re-parses and
re-bootstraps the file, then :meth:`FileState` re-analysis hits the
cluster store for every cluster whose sliced sub-program is unchanged —
so a one-function edit re-analyzes only the clusters whose slices pass
through that function (the grain `tests/test_summary_cache.py` pins).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core import (
    BootstrapAnalyzer,
    BootstrapConfig,
    CascadeConfig,
    SummaryCache,
    diagnostics_to_dict,
    resolve_pointer,
    select_clusters,
)
from ..core.bootstrap import BootstrapResult
from ..core.faults import FaultSpec
from ..core.resilience import RunPolicy
from ..errors import ReproError
from ..ir import Loc, Program, Var
from .protocol import (
    ANALYSIS_ERROR,
    FILE_ERROR,
    INVALID_PARAMS,
    MAX_REQUEST_BYTES,
    RequestError,
)


@dataclass
class ServerConfig:
    """Analysis and store knobs shared by every file the daemon serves."""

    entry: str = "main"
    threshold: int = 60
    oneflow: bool = False
    #: First-stage unification (``steensgaard`` | ``steensgaard_fs``)
    #: plus its field-slot cap, and the cut-shortcut Andersen-stage
    #: rewrite — the ``--clustering``/``--sharing-bound``/
    #: ``--cutshortcut`` daemon flags.
    clustering: str = "steensgaard"
    sharing_bound: int = 8
    cutshortcut: bool = False
    parts: int = 5
    backend: str = "simulate"
    jobs: Optional[int] = None
    scheduler: str = "greedy"
    fscs_budget: Optional[int] = None
    max_cond_atoms: int = 4
    #: In-memory LRU capacity of the cluster-outcome store.
    max_clusters: int = 4096
    #: How many files' analysis states stay resident.
    max_files: int = 16
    #: On-disk summary cache directory (None = memory only).
    cache_dir: Optional[str] = None
    #: Re-check file mtime/hash at query time and reload on change.
    watch: bool = True
    #: Upper bound on one request line; longer lines are rejected with
    #: a structured ``REQUEST_TOO_LARGE`` error and the connection
    #: resyncs at the next newline.
    max_request_bytes: int = MAX_REQUEST_BYTES
    #: Resilience knobs (``repro serve --cluster-timeout/--retries/
    #: --degrade``).  All off by default: an un-tuned daemon fails loads
    #: exactly as before (e.g. a budget overrun stays a structured
    #: ``BUDGET_EXCEEDED`` error), while a tuned one serves partial
    #: results with degraded-precision warnings instead.
    cluster_timeout: Optional[float] = None
    retries: int = 1
    degrade: bool = False
    #: Deterministic fault injection for the resilience test/bench path.
    inject_faults: Optional[List[FaultSpec]] = None

    def bootstrap_config(self) -> BootstrapConfig:
        return BootstrapConfig(
            cascade=CascadeConfig(andersen_threshold=self.threshold,
                                  use_oneflow=self.oneflow,
                                  clustering=self.clustering,
                                  sharing_bound=self.sharing_bound,
                                  cutshortcut=self.cutshortcut),
            parts=self.parts,
            fscs_budget=self.fscs_budget,
            max_cond_atoms=self.max_cond_atoms)

    def run_policy(self) -> Optional[RunPolicy]:
        """The :class:`RunPolicy` for bulk analysis, or ``None`` when no
        resilience knob is set — ``None`` keeps the legacy failure mode
        (request-wide structured errors) byte-for-byte."""
        if self.cluster_timeout is None and self.retries == 1 \
                and not self.degrade:
            return None
        return RunPolicy(cluster_timeout=self.cluster_timeout,
                         retries=self.retries, degrade=self.degrade)


class ClusterStore:
    """Thread-safe LRU of cluster outcomes keyed by payload fingerprint.

    ``get``/``put`` match the :class:`SummaryCache` interface, so an
    instance can be passed straight to ``analyze_all(cache=...)``.  With
    a ``disk`` backing, reads fall through to disk (and promote into
    memory) and writes go to both, giving restarts a warm start.
    """

    def __init__(self, max_entries: int = 4096,
                 disk: Union[SummaryCache, str, None] = None) -> None:
        if isinstance(disk, str):
            disk = SummaryCache(disk)
        self.disk = disk
        self.max_entries = max_entries
        self._mem: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            outcome = self._mem.get(key)
            if outcome is not None:
                self._mem.move_to_end(key)
                self.hits += 1
                return outcome
        if self.disk is not None:
            outcome = self.disk.get(key)
            if outcome is not None:
                with self._lock:
                    self.hits += 1
                    self._insert(key, outcome)
                return outcome
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, outcome: Dict[str, Any]) -> None:
        with self._lock:
            self._insert(key, outcome)
        if self.disk is not None:
            self.disk.put(key, outcome)

    def _insert(self, key: str, outcome: Dict[str, Any]) -> None:
        self._mem[key] = outcome
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._mem:
                return True
        return self.disk is not None and key in self.disk

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._mem),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "disk": self.disk.root if self.disk is not None else None,
            }


@dataclass
class RefreshStats:
    """Accounting of one (re)load of a file's analysis state."""

    clusters: int
    reanalyzed: int   # cluster-store misses: fingerprints never seen
    reused: int       # cluster-store hits: unchanged sliced sub-programs
    seconds: float
    reason: str       # "cold" | "changed" | "invalidate"
    degraded: int = 0  # clusters served at reduced precision

    @property
    def reanalyzed_fraction(self) -> float:
        return self.reanalyzed / self.clusters if self.clusters else 0.0

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["reanalyzed_fraction"] = self.reanalyzed_fraction
        return out


def _source_fingerprint(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FileState:
    """One served file: program, bootstrap result, cluster outcomes.

    Queries answer exactly what the one-shot CLI answers: ``points_to``
    reads the per-cluster outcome table (computed identically to
    ``repro analyze --points-to`` at the entry's exit, as the
    cross-backend differential suite guarantees); ``may_alias`` and
    ``must_alias`` go through the in-memory analyses, lazily and
    demand-driven, memoized across queries on the result object.
    """

    def __init__(self, path: str, source_hash: str, stat: os.stat_result,
                 program: Program, result: BootstrapResult,
                 fingerprints: List[str], outcomes: List[Dict[str, Any]],
                 refresh: RefreshStats,
                 degraded: Optional[Dict[int, str]] = None) -> None:
        self.path = path
        self.source_hash = source_hash
        self.mtime_ns = stat.st_mtime_ns
        self.size = stat.st_size
        self.program = program
        self.result = result
        self.fingerprints = fingerprints
        self.outcomes = outcomes
        self.refresh = refresh
        #: Cluster index -> precision level for clusters the resilience
        #: layer degraded during this load; queries touching them carry
        #: structured ``degraded-precision`` warnings.
        self.degraded: Dict[int, str] = degraded or {}
        #: True when the load's cluster timeout was tightened to a
        #: request deadline's remaining budget.  Such a state is served
        #: to the request that asked for it but never kept if anything
        #: degraded: a later unconstrained query must not inherit
        #: precision lost to someone else's deadline.
        self.deadline_clamped = False
        self.queries = 0
        self._must = None
        self._diagnostics: Dict[Tuple[str, ...], Dict[str, Any]] = {}
        self._taint: Dict[str, Dict[str, Any]] = {}
        #: Demand-engine scenario cache (leaks, deadlocks) keyed by
        #: (verb, *parameters); dropped wholesale on reload, like
        #: ``_taint``, so invalidation stays fingerprint-grained at the
        #: cluster level and query-grained here.
        self._scenarios: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @property
    def exit_loc(self) -> Loc:
        entry = self.program.entry
        return Loc(entry, self.program.cfg_of(entry).exit)

    def resolve(self, name: str) -> Var:
        try:
            return resolve_pointer(self.program, name)
        except LookupError as exc:
            raise RequestError(INVALID_PARAMS, str(exc))

    def _selection(self, pointers: Sequence[Var]) -> Dict[str, Any]:
        sel = select_clusters(self.result, pointers)
        return {"selected": len(sel.selected),
                "total": sel.total_clusters,
                "pointer_fraction": sel.pointer_fraction}

    def degraded_warnings(self, pointers: Optional[Sequence[Var]] = None
                          ) -> List[Dict[str, Any]]:
        """Structured warnings for the degraded clusters a query rests
        on (all of them when ``pointers`` is ``None``).  Empty on
        healthy loads, so clean responses are unchanged."""
        out: List[Dict[str, Any]] = []
        for i, level in sorted(self.degraded.items()):
            cluster = self.result.clusters[i]
            if pointers is not None \
                    and not any(p in cluster.members for p in pointers):
                continue
            outcome = self.outcomes[i] if i < len(self.outcomes) else {}
            entry: Dict[str, Any] = {"code": "degraded-precision",
                                     "cluster": i, "precision": level}
            error = outcome.get("error") if isinstance(outcome, dict) \
                else None
            if error:
                entry["reason"] = error
            out.append(entry)
        return out

    # ------------------------------------------------------------------
    def points_to(self, name: str) -> Dict[str, Any]:
        """Union of the pointer's per-cluster outcome sets at the end of
        the entry function — bit-identical to the one-shot CLI query."""
        p = self.resolve(name)
        objs: set = set()
        for cluster, outcome in zip(self.result.clusters, self.outcomes):
            if p in cluster.members:
                objs.update(outcome["points_to"].get(str(p), ()))
        out: Dict[str, Any] = {"pointer": str(p), "objects": sorted(objs),
                               "clusters": self._selection([p])}
        warnings = self.degraded_warnings([p])
        if warnings:
            out["warnings"] = warnings
        return out

    def may_alias(self, p_name: str, q_name: str) -> Dict[str, Any]:
        p, q = self.resolve(p_name), self.resolve(q_name)
        with self._lock:
            verdict = self.result.may_alias(p, q, self.exit_loc)
        return {"p": str(p), "q": str(q), "may_alias": verdict,
                "clusters": self._selection([p, q])}

    def must_alias(self, p_name: str, q_name: str) -> Dict[str, Any]:
        from ..analysis import MustAlias
        p, q = self.resolve(p_name), self.resolve(q_name)
        with self._lock:
            if self._must is None:
                self._must = MustAlias(self.program).run()
            verdict = self._must.must_alias(p, q, self.exit_loc)
        return {"p": str(p), "q": str(q), "must_alias": verdict}

    def diagnostics(self, checkers: Optional[Sequence[str]] = None
                    ) -> Dict[str, Any]:
        from ..checkers import CHECKER_REGISTRY, run_checkers
        names = tuple(dict.fromkeys(checkers)) if checkers else ()
        unknown = [n for n in names if n not in CHECKER_REGISTRY]
        if unknown:
            raise RequestError(
                INVALID_PARAMS,
                f"unknown checker(s): {', '.join(unknown)} "
                f"(have: {', '.join(sorted(CHECKER_REGISTRY))})")
        with self._lock:
            cached = self._diagnostics.get(names)
            if cached is None:
                report = run_checkers(self.program,
                                      names=list(names) or None,
                                      result=self.result)
                cached = {
                    "diagnostics": diagnostics_to_dict(report.diagnostics),
                    "checkers": [dataclasses.asdict(st)
                                 for st in report.stats],
                }
                warnings = self.degraded_warnings()
                if warnings:
                    cached["warnings"] = warnings
                self._diagnostics[names] = cached
        return cached

    def taint(self, spec: Optional[Dict[str, Any]] = None
              ) -> Dict[str, Any]:
        """Taint flows for this file, cached per spec digest.

        The cache lives on the :class:`FileState`, so an ``invalidate``
        (or a watched change) rebuilds it against the fresh bootstrap
        result — whose clusters came back from the fingerprint-keyed
        cluster store wherever their sliced sub-programs were unchanged.
        The ``refresh`` block in the response surfaces exactly that
        accounting.
        """
        from ..analysis.taint import TaintSpec
        from ..checkers import run_taint
        if spec is None:
            taint_spec = TaintSpec.default()
        else:
            try:
                taint_spec = TaintSpec.from_dict(spec)
            except (ValueError, TypeError, KeyError,
                    AttributeError) as exc:
                raise RequestError(INVALID_PARAMS,
                                   f"bad taint spec: {exc}")
        key = taint_spec.digest()
        with self._lock:
            cached = self._taint.get(key)
            if cached is None:
                run = run_taint(self.program, spec=taint_spec,
                                result=self.result)
                cached = {
                    "diagnostics": diagnostics_to_dict(run.diagnostics),
                    "stats": dataclasses.asdict(run.stats),
                    "rounds": run.rounds,
                    "demanded": sorted(str(v) for v in run.demanded),
                    "spec_digest": key,
                }
                warnings = self.degraded_warnings()
                if warnings:
                    cached["warnings"] = warnings
                self._taint[key] = cached
        out = dict(cached)
        out["refresh"] = self.refresh.to_dict()
        return out

    def leaks(self) -> Dict[str, Any]:
        """Memory-leak findings for this file, cached per query shape.

        Same caching discipline as :meth:`taint`: the result lives on
        the :class:`FileState`, so a reload (watch or ``invalidate``)
        rebuilds it against the fresh bootstrap result while unchanged
        clusters come back from the fingerprint-keyed store.
        """
        from ..checkers import run_leaks
        key: Tuple[Any, ...] = ("leaks",)
        with self._lock:
            cached = self._scenarios.get(key)
            if cached is None:
                run = run_leaks(self.program, result=self.result)
                cached = {
                    "diagnostics": diagnostics_to_dict(run.diagnostics),
                    "leaked": sorted(str(s) for s in run.leaked),
                    "stats": dataclasses.asdict(run.stats),
                    "engine": (dataclasses.asdict(run.engine)
                               if run.engine is not None else None),
                    "rounds": run.rounds,
                    "demanded": sorted(str(v) for v in run.demanded),
                }
                warnings = self.degraded_warnings()
                if warnings:
                    cached["warnings"] = warnings
                self._scenarios[key] = cached
        out = dict(cached)
        out["refresh"] = self.refresh.to_dict()
        return out

    def deadlocks(self, threads: Optional[Sequence[str]] = None
                  ) -> Dict[str, Any]:
        """Lock-order-cycle findings, cached per thread-entry tuple."""
        from ..checkers import run_deadlocks
        names = tuple(threads) if threads else ()
        unknown = [t for t in names if t not in self.program.functions]
        if unknown:
            raise RequestError(
                INVALID_PARAMS,
                f"unknown thread entr"
                f"{'y' if len(unknown) == 1 else 'ies'}: "
                f"{', '.join(unknown)}")
        key: Tuple[Any, ...] = ("deadlocks", names)
        with self._lock:
            cached = self._scenarios.get(key)
            if cached is None:
                run = run_deadlocks(self.program, result=self.result,
                                    thread_entries=list(names) or None)
                cached = {
                    "diagnostics": diagnostics_to_dict(run.diagnostics),
                    "cycles": [c.key for c in run.cycles],
                    "thread_entries": list(run.thread_entries),
                    "stats": dataclasses.asdict(run.stats),
                    "engine": (dataclasses.asdict(run.engine)
                               if run.engine is not None else None),
                    "rounds": run.rounds,
                    "demanded": sorted(str(v) for v in run.demanded),
                }
                warnings = self.degraded_warnings()
                if warnings:
                    cached["warnings"] = warnings
                self._scenarios[key] = cached
        out = dict(cached)
        out["refresh"] = self.refresh.to_dict()
        return out

    # ------------------------------------------------------------------
    def source_changed(self) -> bool:
        """Cheap staleness probe: stat first, hash only when stat moved."""
        try:
            st = os.stat(self.path)
        except OSError:
            return True
        if st.st_mtime_ns == self.mtime_ns and st.st_size == self.size:
            return False
        try:
            with open(self.path, "r") as handle:
                changed = _source_fingerprint(handle.read()) \
                    != self.source_hash
        except OSError:
            return True
        if not changed:
            # Content identical; remember the new stat to skip re-hashing.
            self.mtime_ns = st.st_mtime_ns
            self.size = st.st_size
        return changed

    def summary(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "source_hash": self.source_hash,
            "clusters": len(self.result.clusters),
            "pointers": len(self.program.pointers),
            "queries": self.queries,
            "degraded": len(self.degraded),
            "last_refresh": self.refresh.to_dict(),
        }


class FileStore:
    """LRU of per-file analysis states with per-file locking."""

    def __init__(self, config: ServerConfig,
                 clusters: Optional[ClusterStore] = None) -> None:
        self.config = config
        self.clusters = clusters if clusters is not None else ClusterStore(
            max_entries=config.max_clusters, disk=config.cache_dir)
        self._files: "OrderedDict[str, FileState]" = OrderedDict()
        self._locks: Dict[str, threading.RLock] = {}
        self._lock = threading.RLock()
        self.loads = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def _file_lock(self, path: str) -> threading.RLock:
        with self._lock:
            return self._locks.setdefault(path, threading.RLock())

    def get(self, path: str,
            deadline: Optional[float] = None) -> FileState:
        """The (possibly freshly loaded) state for ``path``; with
        ``watch`` on, a changed file is transparently reloaded.

        ``deadline`` (absolute ``time.time()`` seconds) bounds a load
        this call triggers: the per-cluster timeout is clamped to the
        remaining budget so an in-flight solve aborts (or degrades,
        when the policy allows) via the existing timeout machinery
        instead of running past the caller's patience.  A state that
        lost precision to such a clamp is served once and not kept.
        """
        path = os.path.abspath(path)
        with self._file_lock(path):
            with self._lock:
                state = self._files.get(path)
            if state is not None and self.config.watch \
                    and state.source_changed():
                state = self._load(path, reason="changed",
                                   deadline=deadline)
            elif state is None:
                state = self._load(path, reason="cold",
                                   deadline=deadline)
            if state.deadline_clamped and state.refresh.degraded:
                return state
            with self._lock:
                self._files[path] = state
                self._files.move_to_end(path)
                while len(self._files) > self.config.max_files:
                    self._files.popitem(last=False)
            return state

    def invalidate(self, path: str) -> FileState:
        """Force a reload; unchanged-fingerprint clusters come back from
        the cluster store, so only the edited slices are re-analyzed."""
        path = os.path.abspath(path)
        with self._file_lock(path):
            self.invalidations += 1
            state = self._load(path, reason="invalidate")
            with self._lock:
                self._files[path] = state
                self._files.move_to_end(path)
            return state

    def paths(self) -> List[str]:
        with self._lock:
            return list(self._files)

    def states(self) -> List[FileState]:
        with self._lock:
            return list(self._files.values())

    # ------------------------------------------------------------------
    def _load(self, path: str, reason: str,
              deadline: Optional[float] = None) -> FileState:
        from ..frontend import parse_program
        t0 = time.perf_counter()
        try:
            st = os.stat(path)
            with open(path, "r") as handle:
                source = handle.read()
        except OSError as exc:
            raise RequestError(
                FILE_ERROR, f"cannot read {path}: {exc.strerror or exc}")
        try:
            program = parse_program(source, entry=self.config.entry,
                                    path=path)
        except ReproError as exc:
            raise RequestError(ANALYSIS_ERROR, f"{path}: {exc}")
        policy = self.config.run_policy()
        clamped = False
        if deadline is not None:
            # The remaining end-to-end budget bounds every cluster of
            # this load (a floor keeps the timeout meaningful — a
            # deadline that tight is shed by the caller's post-check).
            budget = max(deadline - time.time(), 0.01)
            if policy is None:
                policy = RunPolicy(cluster_timeout=budget,
                                   retries=1, degrade=False)
                clamped = True
            elif policy.cluster_timeout is None \
                    or policy.cluster_timeout > budget:
                policy = dataclasses.replace(policy,
                                             cluster_timeout=budget)
                clamped = True
        result = BootstrapAnalyzer(
            program, self.config.bootstrap_config()).run()
        report = result.analyze_all(backend=self.config.backend,
                                    jobs=self.config.jobs,
                                    scheduler=self.config.scheduler,
                                    cache=self.clusters,
                                    policy=policy,
                                    faults=self.config.inject_faults)
        degraded = report.degraded
        refresh = RefreshStats(
            clusters=len(result.clusters),
            reanalyzed=report.cache_misses,
            reused=report.cache_hits,
            seconds=time.perf_counter() - t0,
            reason=reason,
            degraded=len(degraded))
        self.loads += 1
        state = FileState(path=path,
                          source_hash=_source_fingerprint(source),
                          stat=st, program=program, result=result,
                          fingerprints=list(report.fingerprints or []),
                          outcomes=list(report.results),
                          refresh=refresh,
                          degraded=degraded)
        state.deadline_clamped = clamped
        return state

"""Python client for the alias query daemon (``repro query`` wraps it).

One :class:`ServerClient` holds one connection; requests are written as
JSON lines and responses matched by id (the protocol is synchronous per
connection, so ids are a sanity check rather than a demultiplexer).
Error responses surface as :class:`~repro.server.protocol.ServerError`
with the structured code — ``repro query`` maps ``BUDGET_EXCEEDED`` to
the same exit code the one-shot CLI uses for budget overruns.

Transient transport failures — a refused or missing socket at connect
time, a ``ConnectionError``/``BrokenPipeError`` or server-side close
mid-call — are retried through a bounded reconnect-with-backoff loop
(``reconnect_attempts`` tries, exponential ``reconnect_backoff``), so
both fleet and single-daemon clients survive a worker restart instead
of dying on the first dropped connection.  Every request is an
idempotent query, so resending after a reconnect is safe; a client
*timeout* is never retried (the analysis may still be running — a
resend would double the work and the wait).  Pass
``reconnect_attempts=0`` for the old fail-fast behavior.

Every call may carry an end-to-end **deadline** (absolute
``time.time()`` seconds, set per call or derived from the client-wide
``deadline`` budget): the client stamps it on the wire so every hop
downstream can shed expired work, refuses to *send* a request whose
deadline already passed, and stops *waiting* the moment the deadline
expires — both surface as the same structured ``DEADLINE_EXCEEDED``
error a server-side shed produces, so callers handle one failure mode,
not three.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Dict, Optional, Sequence

from . import protocol
from .protocol import ServerError


class ConnectError(ServerError, ConnectionError):
    """Connect attempts exhausted: the daemon is unreachable.

    Both a :class:`ServerError` (structured code, existing handlers
    keep working) and a :class:`ConnectionError` (callers that treat
    "no daemon" differently from "the daemon answered with an error" —
    e.g. ``repro query``'s exit paths — can catch the OSError side).
    """

    def __init__(self, message: str) -> None:
        ServerError.__init__(self, protocol.INTERNAL_ERROR, message)


class ServerClient:
    """Talk to a running daemon over a Unix socket or TCP."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: float = 300.0,
                 reconnect_attempts: int = 3,
                 reconnect_backoff: float = 0.05,
                 deadline: Optional[float] = None) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Per-call end-to-end budget in seconds; each call without an
        #: explicit ``deadline=`` argument gets ``now + deadline``
        #: stamped on the wire.  ``None`` keeps the legacy unbounded
        #: behavior (the transport ``timeout`` still applies).
        self.deadline = deadline
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        #: How many times this client re-established its connection.
        self.reconnects = 0
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self._connect_with_backoff(first=True)

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self.socket_path is not None:
            if not hasattr(socket, "AF_UNIX"):
                raise ServerError(
                    protocol.INTERNAL_ERROR,
                    "Unix sockets are unavailable on this platform")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except BaseException:
                sock.close()
                raise
        else:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")

    def _connect_with_backoff(self, first: bool = False) -> None:
        """Establish (or re-establish) the connection; transient refusals
        are retried ``reconnect_attempts`` times with exponential
        backoff before the last error propagates."""
        self._drop()
        last: Optional[Exception] = None
        for attempt in range(self.reconnect_attempts + 1):
            if attempt:
                time.sleep(self.reconnect_backoff * 2 ** (attempt - 1))
            try:
                self._connect()
                if not first:
                    self.reconnects += 1
                return
            except socket.timeout:
                raise
            except OSError as exc:
                last = exc
        raise ConnectError(
            f"cannot connect after {self.reconnect_attempts + 1} "
            f"attempt(s): {last}")

    def _drop(self) -> None:
        """Close the current connection, quietly."""
        for attr in ("_file", "_sock"):
            handle = getattr(self, attr, None)
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
                setattr(self, attr, None)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _shed(self, deadline: float, where: str) -> "ServerError":
        """The client-side mirror of a server-side deadline shed: the
        same code and data shape, so callers see one failure mode."""
        error = protocol.deadline_err(None, deadline, where)["error"]
        return ServerError(error["code"], error["message"],
                           error["data"])

    def call(self, method: str, deadline: Optional[float] = None,
             **params: Any) -> Any:
        """One request/response round-trip; raises :class:`ServerError`
        on an error response, and reconnects (bounded, with backoff)
        before resending when the connection itself drops.

        ``deadline`` is absolute (``time.time()`` seconds); when absent
        the client-wide ``deadline`` budget applies.  An expired
        deadline is shed *before* any bytes are sent, and the wait for
        a response never outlives it.
        """
        if deadline is None and self.deadline is not None:
            deadline = time.time() + self.deadline
        self._next_id += 1
        request_id = self._next_id
        request: Dict[str, Any] = {"id": request_id, "method": method,
                                   "params": params}
        if deadline is not None:
            request["deadline"] = deadline
        frame = protocol.encode(request)
        line = b""
        for attempt in range(self.reconnect_attempts + 1):
            budget = protocol.remaining(deadline)
            if budget is not None and budget <= 0:
                # Expired in the client: never sent, nothing to undo.
                raise self._shed(deadline, "client")
            try:
                if self._sock is None:
                    self._connect_with_backoff()
                if budget is not None:
                    self._sock.settimeout(min(self.timeout, budget))
                self._sock.sendall(frame)
                line = self._file.readline()
            except socket.timeout:
                if protocol.remaining(deadline) is not None \
                        and protocol.remaining(deadline) <= 0:
                    # The wait outlived the caller's patience; stop
                    # waiting (the server sheds its side on its own).
                    raise self._shed(deadline, "client")
                # The analysis may still be running server-side; a
                # resend would double the work *and* the wait.
                raise
            except (ConnectionError, BrokenPipeError, OSError) as exc:
                if attempt >= self.reconnect_attempts:
                    raise ServerError(protocol.INTERNAL_ERROR,
                                      f"connection lost: {exc}")
                self._connect_with_backoff()
                continue
            finally:
                if budget is not None and self._sock is not None:
                    self._sock.settimeout(self.timeout)
            if line:
                break
            # Orderly close mid-call: the daemon restarted under us.
            if attempt >= self.reconnect_attempts:
                raise ServerError(protocol.INTERNAL_ERROR,
                                  "connection closed by server")
            self._connect_with_backoff()
        response = protocol.decode(line)
        error = response.get("error")
        if error is not None:
            raise ServerError(error.get("code", protocol.INTERNAL_ERROR),
                              error.get("message", "unknown error"),
                              error.get("data"))
        if response.get("id") != request_id:
            raise ServerError(protocol.INTERNAL_ERROR,
                              f"response id {response.get('id')!r} does "
                              f"not match request id {request_id!r}")
        return response.get("result")

    # ------------------------------------------------------------------
    # convenience wrappers (file paths are sent absolute so client and
    # daemon working directories need not agree)
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def points_to(self, file: str, ptr: str) -> Dict[str, Any]:
        return self.call("points_to", file=os.path.abspath(file), ptr=ptr)

    def alias(self, file: str, p: str, q: str) -> Dict[str, Any]:
        return self.call("alias", file=os.path.abspath(file), p=p, q=q)

    def must_alias(self, file: str, p: str, q: str) -> Dict[str, Any]:
        return self.call("must_alias", file=os.path.abspath(file), p=p, q=q)

    def diagnostics(self, file: str,
                    checkers: Optional[Sequence[str]] = None
                    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"file": os.path.abspath(file)}
        if checkers is not None:
            params["checkers"] = list(checkers)
        return self.call("diagnostics", **params)

    def taint(self, file: str,
              spec: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        params: Dict[str, Any] = {"file": os.path.abspath(file)}
        if spec is not None:
            params["spec"] = dict(spec)
        return self.call("taint", **params)

    def invalidate(self, file: str) -> Dict[str, Any]:
        return self.call("invalidate", file=os.path.abspath(file))

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def fleet_status(self) -> Dict[str, Any]:
        return self.call("fleet_status")

    def shutdown(self) -> Dict[str, Any]:
        return self.call("shutdown")


def wait_for_server(socket_path: Optional[str] = None,
                    host: str = "127.0.0.1", port: Optional[int] = None,
                    timeout: float = 30.0,
                    interval: float = 0.05) -> None:
    """Block until a daemon answers ``ping`` at the address (used by the
    CI smoke job and the bench); :class:`TimeoutError` on expiry."""
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServerClient(socket_path=socket_path, host=host,
                              port=port, timeout=5.0,
                              reconnect_attempts=0) as client:
                client.ping()
                return
        except (OSError, ServerError) as exc:
            last = exc
            time.sleep(interval)
    raise TimeoutError(
        f"no daemon answered within {timeout:.0f}s (last error: {last})")

"""Python client for the alias query daemon (``repro query`` wraps it).

One :class:`ServerClient` holds one connection; requests are written as
JSON lines and responses matched by id (the protocol is synchronous per
connection, so ids are a sanity check rather than a demultiplexer).
Error responses surface as :class:`~repro.server.protocol.ServerError`
with the structured code — ``repro query`` maps ``BUDGET_EXCEEDED`` to
the same exit code the one-shot CLI uses for budget overruns.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Dict, List, Optional, Sequence

from . import protocol
from .protocol import ServerError


class ServerClient:
    """Talk to a running daemon over a Unix socket or TCP."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: float = 300.0) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self._next_id = 0
        if socket_path is not None:
            if not hasattr(socket, "AF_UNIX"):
                raise ServerError(
                    protocol.INTERNAL_ERROR,
                    "Unix sockets are unavailable on this platform")
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        self._file = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def call(self, method: str, **params: Any) -> Any:
        """One request/response round-trip; raises :class:`ServerError`
        on an error response or a dropped connection."""
        self._next_id += 1
        request_id = self._next_id
        frame = protocol.encode({"id": request_id, "method": method,
                                 "params": params})
        self._sock.sendall(frame)
        line = self._file.readline()
        if not line:
            raise ServerError(protocol.INTERNAL_ERROR,
                              "connection closed by server")
        response = protocol.decode(line)
        error = response.get("error")
        if error is not None:
            raise ServerError(error.get("code", protocol.INTERNAL_ERROR),
                              error.get("message", "unknown error"),
                              error.get("data"))
        if response.get("id") != request_id:
            raise ServerError(protocol.INTERNAL_ERROR,
                              f"response id {response.get('id')!r} does "
                              f"not match request id {request_id!r}")
        return response.get("result")

    # ------------------------------------------------------------------
    # convenience wrappers (file paths are sent absolute so client and
    # daemon working directories need not agree)
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def points_to(self, file: str, ptr: str) -> Dict[str, Any]:
        return self.call("points_to", file=os.path.abspath(file), ptr=ptr)

    def alias(self, file: str, p: str, q: str) -> Dict[str, Any]:
        return self.call("alias", file=os.path.abspath(file), p=p, q=q)

    def must_alias(self, file: str, p: str, q: str) -> Dict[str, Any]:
        return self.call("must_alias", file=os.path.abspath(file), p=p, q=q)

    def diagnostics(self, file: str,
                    checkers: Optional[Sequence[str]] = None
                    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"file": os.path.abspath(file)}
        if checkers is not None:
            params["checkers"] = list(checkers)
        return self.call("diagnostics", **params)

    def taint(self, file: str,
              spec: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        params: Dict[str, Any] = {"file": os.path.abspath(file)}
        if spec is not None:
            params["spec"] = dict(spec)
        return self.call("taint", **params)

    def invalidate(self, file: str) -> Dict[str, Any]:
        return self.call("invalidate", file=os.path.abspath(file))

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.call("shutdown")


def wait_for_server(socket_path: Optional[str] = None,
                    host: str = "127.0.0.1", port: Optional[int] = None,
                    timeout: float = 30.0,
                    interval: float = 0.05) -> None:
    """Block until a daemon answers ``ping`` at the address (used by the
    CI smoke job and the bench); :class:`TimeoutError` on expiry."""
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServerClient(socket_path=socket_path, host=host,
                              port=port, timeout=5.0) as client:
                client.ping()
                return
        except (OSError, ServerError) as exc:
            last = exc
            time.sleep(interval)
    raise TimeoutError(
        f"no daemon answered within {timeout:.0f}s (last error: {last})")

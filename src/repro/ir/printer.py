"""Human-readable IR dumps, used by examples and error messages."""

from __future__ import annotations

from typing import List

from .cfg import CFG
from .program import Program
from .statements import Skip


def format_cfg(cfg: CFG) -> str:
    lines: List[str] = [f"function {cfg.function}:"]
    for idx in cfg.nodes():
        stmt = cfg.stmt(idx)
        succs = ",".join(str(s) for s in cfg.successors(idx))
        marker = ""
        if idx == cfg.entry:
            marker = " <entry>"
        elif idx == cfg.exit:
            marker = " <exit>"
        body = str(stmt)
        if isinstance(stmt, Skip) and not stmt.note:
            body = "skip"
        lines.append(f"  {idx:>4}: {body:<40} -> [{succs}]{marker}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    parts = [format_cfg(program.functions[name].cfg)
             for name in sorted(program.functions)]
    header = (f"program entry={program.entry} "
              f"functions={len(program.functions)} "
              f"pointers={len(program.pointers)}")
    return "\n\n".join([header] + parts)

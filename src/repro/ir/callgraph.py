"""Call graphs, SCC condensation, and function-pointer resolution.

The summary engine (paper Section 3) processes strongly connected
components of the call graph in reverse topological order; recursion is
confined to a component and resolved by fixpoint there.

Function pointers are handled "as in Emami et al.": an indirect call's
candidate targets are the functions its pointer may point to under a
flow-insensitive points-to analysis.  :func:`resolve_indirect_calls`
patches candidate target lists into the IR and adds the sound
parameter/return copy plumbing for every candidate.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Set, Tuple

from .cfg import Loc
from .program import Function, Program, param_var, retval_var
from .statements import CallStmt, Copy, MemObject, Var


class CallGraph:
    """Static call graph over function names."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.edges: Dict[str, Set[str]] = {f: set() for f in program.functions}
        self.redges: Dict[str, Set[str]] = {f: set() for f in program.functions}
        self.sites: Dict[Tuple[str, str], List[Loc]] = {}
        for loc, stmt in program.call_sites:
            for target in stmt.targets:
                if target in program.functions:
                    self._add(loc.function, target, loc)

    def _add(self, caller: str, callee: str, loc: Loc) -> None:
        self.edges[caller].add(callee)
        self.redges[callee].add(caller)
        self.sites.setdefault((caller, callee), []).append(loc)

    def callees(self, f: str) -> Set[str]:
        return self.edges.get(f, set())

    def callers(self, f: str) -> Set[str]:
        return self.redges.get(f, set())

    def call_sites_of(self, caller: str, callee: str) -> List[Loc]:
        return self.sites.get((caller, callee), [])

    # ------------------------------------------------------------------
    def sccs(self) -> List[List[str]]:
        """Tarjan SCCs, returned in *reverse topological* order (callees
        before callers), which is exactly the order summary computation
        wants."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        out: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, Iterable[str]]] = [(root, iter(sorted(self.edges[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.edges[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp: List[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    out.append(comp)

        for f in sorted(self.program.functions):
            if f not in index:
                strongconnect(f)
        # Tarjan emits components in reverse topological order already.
        return out

    def scc_of(self) -> Dict[str, FrozenSet[str]]:
        return {f: frozenset(comp) for comp in self.sccs() for f in comp}

    def is_recursive(self, f: str) -> bool:
        comp = self.scc_of()[f]
        return len(comp) > 1 or f in self.edges[f]

    def reachable_from(self, root: str) -> Set[str]:
        seen = {root}
        frontier = [root]
        while frontier:
            f = frontier.pop()
            for g in self.edges.get(f, ()):
                if g not in seen:
                    seen.add(g)
                    frontier.append(g)
        return seen

    def ancestors_of(self, targets: Iterable[str]) -> Set[str]:
        """All functions from which some target is reachable (the targets
        themselves included).  One reverse BFS — used to find which
        functions can possibly influence a cluster."""
        seen = {t for t in targets if t in self.redges}
        frontier = list(seen)
        while frontier:
            f = frontier.pop()
            for g in self.redges.get(f, ()):
                if g not in seen:
                    seen.add(g)
                    frontier.append(g)
        return seen


def resolve_indirect_calls(
    program: Program,
    points_to: Callable[[Var], Set[MemObject]],
) -> int:
    """Fill in candidate targets for every indirect call.

    ``points_to`` maps a function-pointer variable to the abstract objects
    it may reference; objects that are :class:`Var` named like a function
    in the program are treated as that function (the frontend represents
    ``fp = &f`` as an address-of on the sentinel variable ``Var(f)``).

    For each resolved candidate ``g`` the recorded staged-argument copies
    get mirrored into ``g``'s parameter conduits, and return plumbing is
    added, keeping the all-flow-is-copies invariant.  Returns the number
    of call sites resolved.
    """
    plumbing = getattr(program, "_indirect_plumbing", [])
    resolved = 0
    for entry in plumbing:
        if len(entry) == 4:
            func_name, node, staged, ret = entry
            staged_shadows = tuple({} for _ in staged)
        else:
            func_name, node, staged, ret, staged_shadows = entry
        fn = program.functions[func_name]
        stmt = fn.cfg.stmt(node)
        if not isinstance(stmt, CallStmt) or not stmt.is_indirect:
            continue
        candidates: List[str] = []
        for obj in points_to(stmt.fp):
            if isinstance(obj, Var) and obj.function is None \
                    and obj.name in program.functions:
                candidates.append(obj.name)
        candidates = sorted(set(candidates))
        object.__setattr__(stmt, "targets", tuple(candidates))
        # Splice parameter/return copies for every candidate around the
        # call node: staged -> g::$paramI before, ret = g::$retval after.
        cfg = fn.cfg
        pre: List[int] = []
        for g in candidates:
            for i, conduit in enumerate(staged):
                pre.append(cfg.add_node(Copy(param_var(g, i), conduit)))
                for path, shadow_src in staged_shadows[i].items():
                    target = Var(f"{param_var(g, i).name}__{path}", g)
                    pre.append(cfg.add_node(Copy(target, shadow_src)))
        if pre:
            preds = cfg.predecessors(node)
            first = pre[0]
            for p in preds:
                cfg._succs[p] = [first if s == node else s for s in cfg._succs[p]]
                cfg._preds[node].remove(p)
                cfg._preds[first].append(p)
            for a, b in zip(pre, pre[1:]):
                cfg.add_edge(a, b)
            cfg.add_edge(pre[-1], node)
        if ret is not None and candidates:
            # One return-copy per candidate, as alternative branches: the
            # call returns through exactly one callee.
            succs = cfg.successors(node)
            cfg._succs[node] = []
            for s in succs:
                cfg._preds[s].remove(node)
            for g in candidates:
                post = cfg.add_node(Copy(ret, retval_var(g)))
                cfg.add_edge(node, post)
                for s in succs:
                    cfg.add_edge(post, s)
        resolved += 1
    program.invalidate_caches()
    return resolved


def function_sentinel(name: str) -> Var:
    """The abstract object standing for a function's code (the target of
    ``fp = &f``)."""
    return Var(name)

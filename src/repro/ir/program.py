"""Whole-program IR: functions, variables and abstract objects.

The :class:`Program` is the unit every analysis consumes.  It owns

* one :class:`Function` (with CFG) per source function,
* the set of global variables,
* derived indexes: all pointer-relevant variables, all allocation sites,
  and per-variable definition/use site maps.

Parameter and return-value plumbing follows the convention set by the
normalizer: calling ``g(a)`` emits ``g::$param0 = a`` before the call and
``x = g::$retval`` after it, with matching :class:`~.statements.Copy`
statements, so interprocedural pointer flow is entirely made of canonical
assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .cfg import CFG, Loc, Span
from .statements import (
    AddrOf,
    AllocSite,
    CallStmt,
    MemObject,
    Statement,
    Var,
)

PARAM_PREFIX = "$param"
RETVAL_NAME = "$retval"


def param_var(function: str, index: int) -> Var:
    """The conduit variable for ``function``'s ``index``-th parameter."""
    return Var(f"{PARAM_PREFIX}{index}", function)


def retval_var(function: str) -> Var:
    """The conduit variable carrying ``function``'s return value."""
    return Var(RETVAL_NAME, function)


@dataclass
class Function:
    """A function: its parameters (conduit vars), locals and CFG."""

    name: str
    params: List[Var] = field(default_factory=list)
    locals: Set[Var] = field(default_factory=set)
    cfg: CFG = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cfg is None:
            self.cfg = CFG(self.name)

    @property
    def retval(self) -> Var:
        return retval_var(self.name)

    def variables(self) -> Set[Var]:
        return set(self.params) | self.locals | {self.retval}


class Program:
    """A whole program plus derived, cached indexes.

    Mutating the IR after index access is not supported; build fully, then
    analyze.  ``entry`` defaults to ``main`` when present.
    """

    def __init__(self, functions: Dict[str, Function], entry: Optional[str] = None,
                 globals_: Optional[Set[Var]] = None) -> None:
        self.functions: Dict[str, Function] = dict(functions)
        self.globals: Set[Var] = set(globals_ or set())
        if entry is None:
            entry = "main" if "main" in self.functions else next(iter(self.functions), None)
        if entry is None or entry not in self.functions:
            raise ValueError(f"entry function {entry!r} not in program")
        self.entry: str = entry
        #: Source file the program was parsed from, when known (set by
        #: :func:`repro.frontend.parse_program`); used by diagnostics.
        self.source_path: Optional[str] = None
        #: Source lines suppressed with ``// repro:ignore`` comments:
        #: ``{line: None}`` blankets the line, ``{line: frozenset of
        #: rule ids}`` suppresses only those rules (see
        #: :func:`repro.frontend.lexer.scan_suppressions`).
        self.suppressed_lines: Dict[int, Optional[frozenset]] = {}
        self._pointers: Optional[Set[Var]] = None
        self._objects: Optional[Set[MemObject]] = None
        self._assign_sites: Optional[Dict[Var, List[Loc]]] = None
        self._call_sites: Optional[List[Tuple[Loc, CallStmt]]] = None
        for fn in self.functions.values():
            fn.cfg.validate()

    # ------------------------------------------------------------------
    # iteration helpers
    # ------------------------------------------------------------------
    def statements(self) -> Iterator[Tuple[Loc, Statement]]:
        """Every statement in the program with its location."""
        for fn in self.functions.values():
            for idx, stmt in fn.cfg.statements():
                yield Loc(fn.name, idx), stmt

    def stmt_at(self, loc: Loc) -> Statement:
        return self.functions[loc.function].cfg.stmt(loc.index)

    def span_at(self, loc: Loc) -> Optional[Span]:
        """The source span recorded for ``loc`` (``None`` when the
        program was built without frontend position information)."""
        return self.functions[loc.function].cfg.span(loc.index)

    def cfg_of(self, name: str) -> CFG:
        return self.functions[name].cfg

    # ------------------------------------------------------------------
    # derived indexes (computed lazily, cached)
    # ------------------------------------------------------------------
    @property
    def pointers(self) -> Set[Var]:
        """Every variable that occurs in a canonical pointer assignment.

        This is the paper's set ``P``: the universe the bootstrapping
        cascade partitions.  Address-taken non-pointer variables (pure
        pointees) are *objects* but also appear here so partitions cover
        them, matching the paper's examples where ``{a, b}`` (ints whose
        addresses are taken) is itself a Steensgaard partition.
        """
        if self._pointers is None:
            ptrs: Set[Var] = set()
            for _, stmt in self.statements():
                if not stmt.is_pointer_assign:
                    continue
                lhs = getattr(stmt, "lhs", None)
                if isinstance(lhs, Var):
                    ptrs.add(lhs)
                for v in stmt.used_vars():
                    ptrs.add(v)
                if isinstance(stmt, AddrOf) and isinstance(stmt.target, Var):
                    ptrs.add(stmt.target)
            self._pointers = ptrs
        return self._pointers

    @property
    def objects(self) -> Set[MemObject]:
        """Every abstract memory object: variables plus allocation sites."""
        if self._objects is None:
            objs: Set[MemObject] = set(self.pointers)
            for _, stmt in self.statements():
                if isinstance(stmt, AddrOf) and isinstance(stmt.target, AllocSite):
                    objs.add(stmt.target)
            self._objects = objs
        return self._objects

    @property
    def alloc_sites(self) -> Set[AllocSite]:
        return {o for o in self.objects if isinstance(o, AllocSite)}

    def assignments_to(self, var: Var) -> List[Loc]:
        """Locations whose statement directly assigns to ``var``."""
        if self._assign_sites is None:
            sites: Dict[Var, List[Loc]] = {}
            for loc, stmt in self.statements():
                defined = stmt.defined_var()
                if defined is not None:
                    sites.setdefault(defined, []).append(loc)
            self._assign_sites = sites
        return self._assign_sites.get(var, [])

    @property
    def call_sites(self) -> List[Tuple[Loc, CallStmt]]:
        if self._call_sites is None:
            self._call_sites = [
                (loc, stmt) for loc, stmt in self.statements()
                if isinstance(stmt, CallStmt)
            ]
        return self._call_sites

    # ------------------------------------------------------------------
    # statistics (used by the bench harness)
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        n_stmts = sum(len(fn.cfg) for fn in self.functions.values())
        n_ptr = sum(1 for _, s in self.statements() if s.is_pointer_assign)
        return {
            "functions": len(self.functions),
            "locations": n_stmts,
            "pointer_assignments": n_ptr,
            "pointers": len(self.pointers),
            "alloc_sites": len(self.alloc_sites),
        }

    def invalidate_caches(self) -> None:
        """Drop derived indexes (call after late IR rewrites such as
        indirect-call resolution)."""
        self._pointers = None
        self._objects = None
        self._assign_sites = None
        self._call_sites = None
        # Location-keyed cut-shortcut transforms go stale with the IR.
        self.__dict__.pop("_cutshortcut_transforms", None)

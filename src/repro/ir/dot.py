"""Graphviz (DOT) exports for the structures the paper draws.

Figure 2 of the paper contrasts the Steensgaard and Andersen points-to
graphs of one program; these helpers emit the same pictures for any
program, plus CFG and call-graph dumps for debugging:

    python -m repro analyze file.c --dot steensgaard > g.dot
    dot -Tsvg g.dot -o g.svg
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .cfg import CFG
from .program import Program
from .statements import MemObject, Skip, Var


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def _set_label(objs: Iterable[MemObject]) -> str:
    names = sorted(str(o) for o in objs)
    if len(names) > 6:
        names = names[:6] + ["..."]
    return "{" + ", ".join(names) + "}"


def steensgaard_dot(result) -> str:
    """The class-level points-to graph of a
    :class:`~repro.analysis.steensgaard.SteensgaardResult` (paper
    Figure 2, left).  Every node is a partition; out-degree ≤ 1."""
    lines = ["digraph steensgaard {", "  rankdir=LR;",
             "  node [shape=box, fontsize=10];"]
    index: Dict[frozenset, int] = {}

    def node(members) -> int:
        key = frozenset(members)
        if key not in index:
            index[key] = len(index)
            lines.append(f"  n{index[key]} "
                         f"[label={_quote(_set_label(members))}];")
        return index[key]

    for part in result.partitions():
        node(part)
    for src, dst in result.class_graph():
        lines.append(f"  n{node(src)} -> n{node(dst)};")
    lines.append("}")
    return "\n".join(lines)


def andersen_dot(result, pointers: Optional[Iterable[Var]] = None) -> str:
    """The points-to graph of an
    :class:`~repro.analysis.andersen.AndersenResult` (paper Figure 2,
    right): one node per object, one edge per points-to fact."""
    universe = sorted(set(pointers) if pointers is not None
                      else result.universe, key=str)
    lines = ["digraph andersen {", "  rankdir=LR;",
             "  node [shape=ellipse, fontsize=10];"]
    emitted: Set[str] = set()

    def node(obj: MemObject) -> str:
        name = str(obj)
        if name not in emitted:
            emitted.add(name)
            lines.append(f"  {_quote(name)};")
        return _quote(name)

    for p in universe:
        for target in sorted(result.points_to(p), key=str):
            lines.append(f"  {node(p)} -> {node(target)};")
    lines.append("}")
    return "\n".join(lines)


def cutshortcut_dot(result) -> str:
    """The cut-shortcut rewrite of the return flow (accepts a
    :class:`~repro.analysis.cutshortcut.CutShortcutResult` or the bare
    transform): each severed per-site return copy is a dashed grey
    ``cut`` edge through the shared return conduit, and the per-site
    ``shortcut`` edges that replace it are dashed black."""
    from .statements import AddrOf
    transform = getattr(result, "transform", result)
    lines = ["digraph cutshortcut {", "  rankdir=LR;",
             "  node [shape=ellipse, fontsize=10];"]
    emitted: Set[str] = set()

    def node(name: str) -> str:
        if name not in emitted:
            emitted.add(name)
            lines.append(f"  {_quote(name)};")
        return _quote(name)

    for loc, stmt, callee in sorted(
            transform.cut_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lhs = node(str(stmt.lhs))
        conduit = node(str(stmt.rhs))
        lines.append(f"  {conduit} -> {lhs} "
                     f"[style=dashed, color=gray, "
                     f"label={_quote(f'cut @{loc.function}')}];")
        for repl in transform.shortcut_edges.get(loc, ()):
            if isinstance(repl, AddrOf):
                src = node(f"&{repl.target}")
            else:
                src = node(str(repl.rhs))
            lines.append(f"  {src} -> {lhs} "
                         f"[style=dashed, label=\"shortcut\"];")
    lines.append("}")
    return "\n".join(lines)


def cfg_dot(cfg: CFG) -> str:
    """One function's control-flow graph."""
    lines = [f"digraph {cfg.function} {{", "  node [shape=box, fontsize=9];"]
    for idx in cfg.nodes():
        stmt = cfg.stmt(idx)
        label = f"{idx}: {stmt}"
        if isinstance(stmt, Skip) and not stmt.note:
            label = f"{idx}"
        shape = ""
        if idx == cfg.entry:
            shape = ", style=bold"
        elif idx == cfg.exit:
            shape = ", peripheries=2"
        lines.append(f"  n{idx} [label={_quote(label)}{shape}];")
    for idx in cfg.nodes():
        for succ in cfg.successors(idx):
            lines.append(f"  n{idx} -> n{succ};")
    lines.append("}")
    return "\n".join(lines)


def callgraph_dot(program: Program) -> str:
    """The resolved call graph (indirect edges dashed)."""
    from .callgraph import CallGraph
    from .statements import CallStmt
    cg = CallGraph(program)
    indirect_pairs: Set[tuple] = set()
    for loc, stmt in program.call_sites:
        if isinstance(stmt, CallStmt) and stmt.is_indirect:
            for t in stmt.targets:
                indirect_pairs.add((loc.function, t))
    lines = ["digraph callgraph {", "  node [shape=box, fontsize=10];"]
    for f in sorted(program.functions):
        lines.append(f"  {_quote(f)};")
    for caller in sorted(program.functions):
        for callee in sorted(cg.callees(caller)):
            style = " [style=dashed]" if (caller, callee) in indirect_pairs \
                else ""
            lines.append(f"  {_quote(caller)} -> {_quote(callee)}{style};")
    lines.append("}")
    return "\n".join(lines)

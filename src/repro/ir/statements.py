"""Normalized IR statements: the paper's four canonical pointer forms.

The paper (Remark 1) assumes every pointer assignment is one of

* ``x = y``    -- :class:`Copy`
* ``x = &y``   -- :class:`AddrOf`
* ``*x = y``   -- :class:`Store`
* ``x = *y``   -- :class:`Load`

plus heap allocation ``p = &alloc_loc`` (an :class:`AddrOf` whose target is
an :class:`AllocSite`) and deallocation ``p = NULL``
(:class:`NullAssign`).  Calls and returns carry no pointer flow themselves:
the normalizer emits explicit parameter/return-value :class:`Copy`
statements, so :class:`CallStmt` / :class:`ReturnStmt` only transfer
control.  Everything else in the source program is a :class:`Skip`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


@dataclass(frozen=True, order=True)
class Var:
    """A program variable.

    ``function`` is ``None`` for globals.  Flattened struct fields are
    ordinary variables named ``base__field`` and temporaries are named
    ``$tN``; both are created by the normalizer.
    """

    name: str
    function: Optional[str] = None

    @property
    def qualified(self) -> str:
        if self.function is None:
            return self.name
        return f"{self.function}::{self.name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.qualified


@dataclass(frozen=True, order=True)
class AllocSite:
    """An abstract heap object named after its allocation location.

    The paper models ``p = malloc(...)`` at location ``loc`` as
    ``p = &alloc_loc``; one abstract object per syntactic site.
    """

    label: str

    @property
    def qualified(self) -> str:
        return f"alloc@{self.label}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.qualified


#: Anything a pointer can point at: a variable or a heap allocation site.
MemObject = Union[Var, AllocSite]


class Statement:
    """Base class for IR statements.

    Statements are immutable value objects; location information lives in
    the enclosing :class:`~repro.ir.cfg.CFG`, not on the statement, so the
    same statement object may appear at several locations.
    """

    __slots__ = ()

    #: True for the four canonical pointer-assignment forms (and null
    #: assignment), i.e. statements Algorithm 1 has to look at.
    is_pointer_assign = False

    def defined_var(self) -> Optional[Var]:
        """The variable whose *value* this statement may change directly.

        For ``*x = y`` this is ``None``: the statement writes through
        ``x`` rather than to a named variable.
        """
        return None

    def used_vars(self) -> Tuple[Var, ...]:
        """Variables whose values this statement reads."""
        return ()


@dataclass(frozen=True)
class Copy(Statement):
    """``lhs = rhs``"""

    lhs: Var
    rhs: Var

    is_pointer_assign = True

    def defined_var(self) -> Optional[Var]:
        return self.lhs

    def used_vars(self) -> Tuple[Var, ...]:
        return (self.rhs,)

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass(frozen=True)
class AddrOf(Statement):
    """``lhs = &target`` where target is a variable or allocation site."""

    lhs: Var
    target: MemObject

    is_pointer_assign = True

    def defined_var(self) -> Optional[Var]:
        return self.lhs

    def used_vars(self) -> Tuple[Var, ...]:
        return ()

    def __str__(self) -> str:
        return f"{self.lhs} = &{self.target}"


@dataclass(frozen=True)
class Load(Statement):
    """``lhs = *rhs``"""

    lhs: Var
    rhs: Var

    is_pointer_assign = True

    def defined_var(self) -> Optional[Var]:
        return self.lhs

    def used_vars(self) -> Tuple[Var, ...]:
        return (self.rhs,)

    def __str__(self) -> str:
        return f"{self.lhs} = *{self.rhs}"


@dataclass(frozen=True)
class Store(Statement):
    """``*lhs = rhs``"""

    lhs: Var
    rhs: Var

    is_pointer_assign = True

    def used_vars(self) -> Tuple[Var, ...]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"*{self.lhs} = {self.rhs}"


@dataclass(frozen=True)
class NullAssign(Statement):
    """``lhs = NULL`` (also models ``free``, per the paper).

    ``reason`` records *why* the null was assigned: ``"null"`` for a
    genuine null store and ``"free"`` when the normalizer lowered a
    deallocator call.  Alias analyses never look at it (it is excluded
    from equality), but memory-safety checkers need the distinction —
    a dereference after ``free(p)`` is a use-after-free, not a
    null-dereference.
    """

    lhs: Var
    reason: str = field(default="null", compare=False)

    is_pointer_assign = True

    @property
    def is_free(self) -> bool:
        return self.reason == "free"

    def defined_var(self) -> Optional[Var]:
        return self.lhs

    def __str__(self) -> str:
        return f"{self.lhs} = NULL"


@dataclass(frozen=True)
class CallStmt(Statement):
    """A call transferring control to ``callee`` (direct) or through
    ``fp`` (indirect).

    Argument and return-value pointer flow is represented by explicit
    :class:`Copy` statements emitted around the call by the normalizer, so
    analyses treat this statement as pure control transfer.  Indirect
    calls get their candidate targets filled in by
    :func:`repro.ir.callgraph.resolve_indirect_calls`.
    """

    callee: Optional[str] = None
    fp: Optional[Var] = None
    # Resolved candidate targets for indirect calls (function names).
    # Mutable on purpose: resolution happens after IR construction.
    targets: Tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if (self.callee is None) == (self.fp is None):
            raise ValueError("CallStmt needs exactly one of callee/fp")
        if self.callee is not None:
            object.__setattr__(self, "targets", (self.callee,))

    @property
    def is_indirect(self) -> bool:
        return self.fp is not None

    def used_vars(self) -> Tuple[Var, ...]:
        return (self.fp,) if self.fp is not None else ()

    def __str__(self) -> str:
        if self.callee is not None:
            return f"call {self.callee}()"
        return f"call (*{self.fp})()"


@dataclass(frozen=True)
class ExternCall(Statement):
    """A call to a function with no body in the program (a library call).

    Alias analyses ignore it (``is_pointer_assign`` is false: the paper
    follows the convention of ignoring library internals, and the
    normalizer still materializes a fresh, unaliased temporary for the
    return value).  It exists so *clients* can attach semantics to
    library calls — the taint engine reads sources, sinks and sanitizers
    off these statements.  Each argument is materialized into exactly one
    variable, so ``args[i]`` is positionally the i-th source argument.
    """

    name: str
    args: Tuple[Var, ...] = ()
    result: Optional[Var] = None

    def defined_var(self) -> Optional[Var]:
        return self.result

    def used_vars(self) -> Tuple[Var, ...]:
        return self.args

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        if self.result is not None:
            return f"{self.result} = extern {self.name}({args})"
        return f"extern {self.name}({args})"


@dataclass(frozen=True)
class ReturnStmt(Statement):
    """Return from the enclosing function (value flow is a prior Copy)."""

    def __str__(self) -> str:
        return "return"


@dataclass(frozen=True)
class Assume(Statement):
    """A path condition from a branch: ``lhs == rhs`` / ``lhs != rhs``
    (``rhs is None`` compares against NULL).

    This is the paper's path-sensitivity extension (Section 3): branch
    conditions over pointers are recorded so that flow-sensitive stages
    can refine state per arm and the summary engine can attach branching
    constraints to its tuples.  Flow-insensitive analyses ignore it
    (sound: an assume only restricts executions).
    """

    lhs: Var
    rhs: Optional[Var] = None
    equal: bool = True

    def used_vars(self) -> Tuple[Var, ...]:
        if self.rhs is None:
            return (self.lhs,)
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        op = "==" if self.equal else "!="
        rhs = "NULL" if self.rhs is None else str(self.rhs)
        return f"assume {self.lhs} {op} {rhs}"


@dataclass(frozen=True)
class Skip(Statement):
    """A statement with no pointer effect (conditions, arithmetic, ...).

    The paper replaces every statement outside ``St_P`` by ``skip``; we
    keep a note for readable IR dumps.
    """

    note: str = ""

    def __str__(self) -> str:
        return f"skip({self.note})" if self.note else "skip"


def is_canonical(stmt: Statement) -> bool:
    """True if ``stmt`` is one of the paper's pointer-assignment forms."""
    return stmt.is_pointer_assign

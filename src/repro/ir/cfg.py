"""Control-flow graphs over location-indexed statements.

A :class:`CFG` holds one statement per *location*.  Locations are dense
integer indices local to a function; :class:`Loc` pairs them with the
function name so they are globally unique and printable (the paper labels
locations ``1a``, ``2b``, ...; our printer produces similar labels).

Conditional branches carry no predicate: the paper treats all conditionals
as non-deterministic ("all conditional statements ... are treated as
evaluating to true"), so an ``if`` simply becomes a location with two
successors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .statements import Skip, Statement


@dataclass(frozen=True, order=True)
class Loc:
    """A global program location: (function name, index within function)."""

    function: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.function}:{self.index}"


@dataclass(frozen=True, order=True)
class Span:
    """A source span (1-based line/column) attached to a CFG node.

    The frontend plumbs token positions through the parser and normalizer
    so diagnostics point at real source lines; programs built directly
    through the builder API simply have no spans (``None``).
    """

    line: int
    column: int = 0
    end_line: Optional[int] = None
    end_column: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.column:
            return f"{self.line}:{self.column}"
        return str(self.line)


class CFG:
    """A single function's control-flow graph.

    Nodes are integer indices ``0 .. len(self) - 1``; node ``i`` executes
    ``self.stmt(i)`` and then transfers control to each of
    ``self.successors(i)``.  Every CFG has a unique :attr:`entry` and a
    unique synthetic :attr:`exit` node holding a ``Skip``.
    """

    def __init__(self, function: str) -> None:
        self.function = function
        self._stmts: List[Statement] = []
        self._spans: List[Optional[Span]] = []
        self._succs: List[List[int]] = []
        self._preds: List[List[int]] = []
        self.entry: int = self.add_node(Skip("entry"))
        self.exit: Optional[int] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, stmt: Statement, span: Optional[Span] = None) -> int:
        """Append a node holding ``stmt``; returns its index."""
        idx = len(self._stmts)
        self._stmts.append(stmt)
        self._spans.append(span)
        self._succs.append([])
        self._preds.append([])
        return idx

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self._succs[src]:
            self._succs[src].append(dst)
            self._preds[dst].append(src)

    def set_stmt(self, idx: int, stmt: Statement) -> None:
        self._stmts[idx] = stmt

    def set_span(self, idx: int, span: Optional[Span]) -> None:
        self._spans[idx] = span

    def seal(self) -> None:
        """Finalize the graph: create the exit node if missing and route
        every successor-less node to it."""
        if self.exit is None:
            self.exit = self.add_node(Skip("exit"))
        for idx in range(len(self._stmts)):
            if idx != self.exit and not self._succs[idx]:
                self.add_edge(idx, self.exit)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._stmts)

    def stmt(self, idx: int) -> Statement:
        return self._stmts[idx]

    def successors(self, idx: int) -> Tuple[int, ...]:
        return tuple(self._succs[idx])

    def predecessors(self, idx: int) -> Tuple[int, ...]:
        return tuple(self._preds[idx])

    def nodes(self) -> range:
        return range(len(self._stmts))

    def loc(self, idx: int) -> Loc:
        return Loc(self.function, idx)

    def span(self, idx: int) -> Optional[Span]:
        """The source span of node ``idx`` (``None`` for synthetic
        nodes and builder-constructed programs)."""
        return self._spans[idx]

    def statements(self) -> Iterator[Tuple[int, Statement]]:
        """Iterate over ``(index, statement)`` pairs."""
        return iter(enumerate(self._stmts))

    def reverse_postorder(self) -> List[int]:
        """Nodes in reverse postorder from the entry (good worklist order
        for forward dataflow)."""
        seen = [False] * len(self._stmts)
        order: List[int] = []
        # Iterative DFS to survive deep synthetic CFGs.
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen[self.entry] = True
        while stack:
            node, child = stack[-1]
            succs = self._succs[node]
            if child < len(succs):
                stack[-1] = (node, child + 1)
                nxt = succs[child]
                if not seen[nxt]:
                    seen[nxt] = True
                    stack.append((nxt, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def reachable(self) -> List[int]:
        """Nodes reachable from the entry."""
        return self.reverse_postorder()

    def validate(self) -> None:
        """Raise ``ValueError`` on structural inconsistencies."""
        if self.exit is None:
            raise ValueError(f"CFG for {self.function} was never sealed")
        for idx in self.nodes():
            for s in self._succs[idx]:
                if not 0 <= s < len(self._stmts):
                    raise ValueError(f"edge {idx}->{s} out of range")
                if idx not in self._preds[s]:
                    raise ValueError(f"pred list missing {idx}->{s}")
        if self._succs[self.exit]:
            raise ValueError("exit node must have no successors")


def straight_line(function: str, stmts: Iterable[Statement]) -> CFG:
    """Build a straight-line CFG from a statement sequence (test helper
    and building block for the synthetic generator)."""
    cfg = CFG(function)
    prev = cfg.entry
    for stmt in stmts:
        node = cfg.add_node(stmt)
        cfg.add_edge(prev, node)
        prev = node
    cfg.seal()
    return cfg


def location_labels(cfg: CFG) -> Dict[int, str]:
    """Paper-style labels (``1a``, ``2a``...) for a CFG's non-synthetic
    nodes, in node order.  Purely cosmetic; used by the printer."""
    suffix = "abcdefghijklmnopqrstuvwxyz"[hash(cfg.function) % 26]
    labels: Dict[int, str] = {}
    counter = 1
    for idx in cfg.nodes():
        stmt = cfg.stmt(idx)
        if isinstance(stmt, Skip):
            labels[idx] = f"<{stmt.note or 'skip'}>"
        else:
            labels[idx] = f"{counter}{suffix}"
            counter += 1
    return labels

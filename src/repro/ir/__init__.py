"""Normalized intermediate representation for pointer analysis."""

from .builder import FunctionBuilder, ProgramBuilder
from .callgraph import CallGraph, function_sentinel, resolve_indirect_calls
from .cfg import CFG, Loc, Span, location_labels, straight_line
from .dot import (
    andersen_dot,
    callgraph_dot,
    cfg_dot,
    cutshortcut_dot,
    steensgaard_dot,
)
from .printer import format_cfg, format_program
from .serialize import (
    SymbolTable,
    cluster_from_dict,
    cluster_from_wire,
    cluster_to_dict,
    cluster_to_wire,
    decode_symbols,
    load_program,
    program_from_dict,
    program_from_wire,
    program_to_dict,
    program_to_wire,
    save_program,
    slice_from_dict,
    slice_from_wire,
    slice_to_dict,
    slice_to_wire,
)
from .program import Function, Program, param_var, retval_var
from .statements import (
    AddrOf,
    AllocSite,
    Assume,
    CallStmt,
    Copy,
    ExternCall,
    Load,
    MemObject,
    NullAssign,
    ReturnStmt,
    Skip,
    Statement,
    Store,
    Var,
    is_canonical,
)

__all__ = [
    "AddrOf", "AllocSite", "Assume", "CFG", "CallGraph", "CallStmt",
    "Copy", "ExternCall", "Function", "FunctionBuilder", "Load", "Loc", "MemObject",
    "NullAssign", "Program", "ProgramBuilder", "ReturnStmt", "Skip",
    "Span", "Statement", "Store", "Var", "andersen_dot", "callgraph_dot", "cfg_dot", "cutshortcut_dot", "format_cfg", "format_program", "steensgaard_dot",
    "SymbolTable", "cluster_from_dict", "cluster_from_wire",
    "cluster_to_dict", "cluster_to_wire", "decode_symbols",
    "function_sentinel", "is_canonical", "location_labels", "param_var",
    "load_program", "program_from_dict", "program_from_wire",
    "program_to_dict", "program_to_wire", "resolve_indirect_calls",
    "retval_var", "save_program",
    "slice_from_dict", "slice_from_wire", "slice_to_dict", "slice_to_wire",
    "straight_line",
]

"""A small fluent API for constructing IR programs directly.

The frontend produces IR through this builder, and so do the synthetic
benchmark generator and most tests — writing the paper's examples as
builder calls is often clearer than embedding C source strings.

Example (Figure 2 of the paper)::

    b = ProgramBuilder()
    with b.function("main") as f:
        f.addr("p", "a")      # 1a: p = &a
        f.addr("q", "b")      # 2a: q = &b
        f.addr("r", "c")      # 3a: r = &c
        f.copy("q", "p")      # 4a: q = p
        f.copy("q", "r")      # 5a: q = r
    prog = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

from .cfg import CFG, Span
from .program import Function, Program, param_var, retval_var
from .statements import (
    AddrOf,
    AllocSite,
    Assume,
    CallStmt,
    Copy,
    ExternCall,
    Load,
    NullAssign,
    ReturnStmt,
    Skip,
    Statement,
    Store,
    Var,
)

NameOrVar = Union[str, Var]


class FunctionBuilder:
    """Accumulates statements and control structure for one function."""

    def __init__(self, program: "ProgramBuilder", name: str,
                 params: Sequence[str] = ()) -> None:
        self._program = program
        self.name = name
        self.fn = Function(name=name, params=[param_var(name, i)
                                              for i in range(len(params))])
        # User-facing parameter names are locals initialized from conduits.
        self._cfg: CFG = self.fn.cfg
        self._frontier: List[int] = [self._cfg.entry]
        #: Span attached to emitted statements when none is given
        #: explicitly; the normalizer updates it as it walks the AST.
        self.default_span: Optional[Span] = None
        for i, p in enumerate(params):
            self.copy(p, self.fn.params[i])

    # -- variable handling ------------------------------------------------
    def var(self, name: NameOrVar) -> Var:
        """Resolve a name to a Var: globals win, otherwise function-local."""
        if isinstance(name, Var):
            return name
        g = Var(name)
        if g in self._program.globals:
            return g
        v = Var(name, self.name)
        self.fn.locals.add(v)
        return v

    # -- statement emission ----------------------------------------------
    def emit(self, stmt: Statement, span: Optional[Span] = None) -> int:
        node = self._cfg.add_node(stmt, span if span is not None
                                  else self.default_span)
        for f in self._frontier:
            self._cfg.add_edge(f, node)
        self._frontier = [node]
        return node

    def copy(self, lhs: NameOrVar, rhs: NameOrVar) -> int:
        return self.emit(Copy(self.var(lhs), self.var(rhs)))

    def addr(self, lhs: NameOrVar, target: NameOrVar) -> int:
        return self.emit(AddrOf(self.var(lhs), self.var(target)))

    def alloc(self, lhs: NameOrVar, label: Optional[str] = None) -> int:
        if label is None:
            label = f"{self.name}.{len(self._cfg)}"
        site = AllocSite(label)
        return self.emit(AddrOf(self.var(lhs), site))

    def load(self, lhs: NameOrVar, rhs: NameOrVar) -> int:
        return self.emit(Load(self.var(lhs), self.var(rhs)))

    def store(self, lhs: NameOrVar, rhs: NameOrVar) -> int:
        return self.emit(Store(self.var(lhs), self.var(rhs)))

    def null(self, lhs: NameOrVar, reason: str = "null") -> int:
        return self.emit(NullAssign(self.var(lhs), reason=reason))

    def free(self, lhs: NameOrVar) -> int:
        """``free(lhs)`` under the paper's model: a free-tagged null."""
        return self.null(lhs, reason="free")

    def assume(self, lhs: NameOrVar, rhs: Optional[NameOrVar] = None,
               equal: bool = True) -> int:
        """Path condition: ``lhs == rhs`` / ``!=`` (rhs None == NULL)."""
        rv = self.var(rhs) if rhs is not None else None
        return self.emit(Assume(self.var(lhs), rv, equal))

    def skip(self, note: str = "") -> int:
        return self.emit(Skip(note))

    def extern_call(self, name: str, args: Sequence[NameOrVar] = (),
                    ret: Optional[NameOrVar] = None) -> int:
        """A library call (no body in the program): taint sources, sinks
        and sanitizers anchor here."""
        return self.emit(ExternCall(
            name, tuple(self.var(a) for a in args),
            self.var(ret) if ret is not None else None))

    def call(self, callee: str, args: Sequence[NameOrVar] = (),
             ret: Optional[NameOrVar] = None) -> int:
        """Direct call with explicit parameter/return Copy plumbing."""
        for i, a in enumerate(args):
            self.emit(Copy(param_var(callee, i), self.var(a)))
        node = self.emit(CallStmt(callee=callee))
        if ret is not None:
            self.emit(Copy(self.var(ret), retval_var(callee)))
        return node

    def call_indirect(self, fp: NameOrVar, args: Sequence[NameOrVar] = (),
                      ret: Optional[NameOrVar] = None,
                      arg_conduits: Sequence[NameOrVar] = ()) -> int:
        """Indirect call through function pointer ``fp``.

        Argument copies to candidate-callee conduits are added later by
        :func:`repro.ir.callgraph.resolve_indirect_calls`; callers may
        pre-declare per-argument staging variables via ``arg_conduits``.
        """
        staged: List[Var] = []
        for i, a in enumerate(args):
            conduit = (self.var(arg_conduits[i]) if i < len(arg_conduits)
                       else self.var(f"$icarg{len(self._cfg)}_{i}"))
            self.emit(Copy(conduit, self.var(a)))
            staged.append(conduit)
        node = self.emit(CallStmt(fp=self.var(fp)))
        self._program._indirect_sites.append(
            (self.name, node, tuple(staged),
             self.var(ret) if ret is not None else None))
        if ret is not None:
            # Return plumbing is also patched in during resolution; the
            # ret variable is recorded above.
            pass
        return node

    def ret(self, value: Optional[NameOrVar] = None) -> int:
        if value is not None:
            self.emit(Copy(self.fn.retval, self.var(value)))
        node = self.emit(ReturnStmt())
        self._cfg.add_edge(node, self._ensure_exit())
        self._frontier = []
        return node

    # -- control flow ------------------------------------------------------
    @contextmanager
    def branch(self) -> Iterator["BranchBuilder"]:
        """Non-deterministic two-way branch (paper: conditionals are
        treated as always-feasible)::

            with f.branch() as br:
                with br.then():
                    f.copy("x", "y")
                with br.otherwise():
                    f.copy("x", "z")
        """
        cond = self.emit(Skip("branch"))
        br = BranchBuilder(self, cond)
        yield br
        self._frontier = br.join_frontier()

    @contextmanager
    def loop(self) -> Iterator[None]:
        """Non-deterministic loop: body executes zero or more times."""
        head = self.emit(Skip("loop-head"))
        yield
        for f in self._frontier:
            self._cfg.add_edge(f, head)
        self._frontier = [head]

    def _ensure_exit(self) -> int:
        if self._cfg.exit is None:
            self._cfg.exit = self._cfg.add_node(Skip("exit"))
        return self._cfg.exit

    def finish(self) -> Function:
        exit_node = self._ensure_exit()
        for f in self._frontier:
            self._cfg.add_edge(f, exit_node)
        self._frontier = []
        self._cfg.seal()
        return self.fn


class BranchBuilder:
    def __init__(self, fb: FunctionBuilder, cond_node: int) -> None:
        self._fb = fb
        self._cond = cond_node
        self._arm_frontiers: List[List[int]] = []

    @contextmanager
    def then(self) -> Iterator[None]:
        self._fb._frontier = [self._cond]
        yield
        self._arm_frontiers.append(list(self._fb._frontier))

    @contextmanager
    def otherwise(self) -> Iterator[None]:
        self._fb._frontier = [self._cond]
        yield
        self._arm_frontiers.append(list(self._fb._frontier))

    def join_frontier(self) -> List[int]:
        if not self._arm_frontiers:
            return [self._cond]
        if len(self._arm_frontiers) == 1:
            # if-without-else: fall-through edge around the arm
            return self._arm_frontiers[0] + [self._cond]
        out: List[int] = []
        for arm in self._arm_frontiers:
            out.extend(arm)
        return out


class ProgramBuilder:
    """Collects functions and globals into a :class:`Program`."""

    def __init__(self) -> None:
        self._functions: Dict[str, Function] = {}
        self.globals: Set[Var] = set()
        self._indirect_sites: List = []
        self._entry: Optional[str] = None

    def global_var(self, name: str) -> Var:
        v = Var(name)
        self.globals.add(v)
        return v

    @contextmanager
    def function(self, name: str, params: Sequence[str] = (),
                 entry: bool = False) -> Iterator[FunctionBuilder]:
        if name in self._functions:
            raise ValueError(f"duplicate function {name!r}")
        fb = FunctionBuilder(self, name, params)
        yield fb
        self._functions[name] = fb.finish()
        if entry:
            self._entry = name

    def build(self, entry: Optional[str] = None) -> Program:
        prog = Program(self._functions, entry=entry or self._entry,
                       globals_=self.globals)
        prog._indirect_plumbing = list(self._indirect_sites)  # type: ignore[attr-defined]
        return prog

"""JSON (de)serialization of IR programs, clusters and slices.

Lets tools cache normalized programs (frontend runs once), ship programs
between processes for real parallel analysis, and snapshot regression
inputs.  The format is versioned and round-trips exactly:

    data = program_to_dict(prog)
    prog2 = program_from_dict(data)
    assert format_program(prog) == format_program(prog2)

Beyond whole programs, the module round-trips the cascade's work units so
the process-pool backend can ship one cluster per task:
:func:`slice_to_dict` / :func:`slice_from_dict` handle Algorithm 1
slices, and :func:`cluster_to_dict` / :func:`cluster_from_dict` handle
:class:`~repro.core.clusters.Cluster` (members, slice, origin, parent
provenance).  All collection fields are emitted in a canonical sorted
order, so equal values serialize to byte-identical JSON — the summary
cache hashes these dicts.

Two encodings exist for shipped work units:

* the *plain* dict encoding above, where every ``Var``/``AllocSite``
  appears as an inline ``{"n", "f"}`` / ``{"alloc"}`` dict — verbose but
  self-contained, and the format whole-program dumps keep using;
* the *wire* encoding (:class:`SymbolTable`, :func:`program_to_wire`,
  :func:`slice_to_wire`, :func:`cluster_to_wire` and their inverses),
  where each distinct symbol is emitted once in a shared table and every
  occurrence is an integer index.  Cluster payloads repeat the same
  symbols dozens of times, so interning them once per payload is what
  slims the process-backend's shipping cost (see
  :mod:`repro.core.shipping`).

Both encodings share one statement codec, so they cannot drift apart.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .cfg import CFG, Loc, Span
from .program import Function, Program
from .statements import (
    AddrOf,
    AllocSite,
    Assume,
    CallStmt,
    Copy,
    ExternCall,
    Load,
    MemObject,
    NullAssign,
    ReturnStmt,
    Skip,
    Statement,
    Store,
    Var,
)

#: Version 2 added optional source spans and the NullAssign reason tag;
#: version 3 added ExternCall (library-call) statements.  Older dumps
#: (no spans / no extern calls) still load.
FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)


def _var(v: Var) -> Dict[str, Any]:
    return {"n": v.name, "f": v.function}


def _obj(o: MemObject) -> Dict[str, Any]:
    if isinstance(o, AllocSite):
        return {"alloc": o.label}
    return _var(o)


def _load_var(d: Dict[str, Any]) -> Var:
    return Var(d["n"], d.get("f"))


def _load_obj(d: Dict[str, Any]) -> MemObject:
    if "alloc" in d:
        return AllocSite(d["alloc"])
    return _load_var(d)


def _stmt_to(stmt: Statement, var: Any, obj: Any) -> Dict[str, Any]:
    """Statement encoder, parameterized over the symbol codec: ``var`` /
    ``obj`` map a Var / MemObject to its wire form (inline dict for the
    plain format, table index for the interned format)."""
    if isinstance(stmt, Copy):
        return {"k": "copy", "l": var(stmt.lhs), "r": var(stmt.rhs)}
    if isinstance(stmt, AddrOf):
        return {"k": "addr", "l": var(stmt.lhs), "t": obj(stmt.target)}
    if isinstance(stmt, Load):
        return {"k": "load", "l": var(stmt.lhs), "r": var(stmt.rhs)}
    if isinstance(stmt, Store):
        return {"k": "store", "l": var(stmt.lhs), "r": var(stmt.rhs)}
    if isinstance(stmt, NullAssign):
        out: Dict[str, Any] = {"k": "null", "l": var(stmt.lhs)}
        if stmt.reason != "null":
            out["reason"] = stmt.reason
        return out
    if isinstance(stmt, Assume):
        return {"k": "assume", "l": var(stmt.lhs),
                "r": var(stmt.rhs) if stmt.rhs is not None else None,
                "eq": stmt.equal}
    if isinstance(stmt, CallStmt):
        return {"k": "call", "callee": stmt.callee,
                "fp": var(stmt.fp) if stmt.fp is not None else None,
                "targets": list(stmt.targets)}
    if isinstance(stmt, ExternCall):
        return {"k": "extern", "name": stmt.name,
                "args": [var(a) for a in stmt.args],
                "res": var(stmt.result) if stmt.result is not None
                else None}
    if isinstance(stmt, ReturnStmt):
        return {"k": "return"}
    if isinstance(stmt, Skip):
        return {"k": "skip", "note": stmt.note}
    raise TypeError(f"unserializable statement {type(stmt).__name__}")


def _stmt_from(d: Dict[str, Any], var: Any, obj: Any) -> Statement:
    """Statement decoder, inverse of :func:`_stmt_to` under the matching
    symbol codec."""
    kind = d["k"]
    if kind == "copy":
        return Copy(var(d["l"]), var(d["r"]))
    if kind == "addr":
        return AddrOf(var(d["l"]), obj(d["t"]))
    if kind == "load":
        return Load(var(d["l"]), var(d["r"]))
    if kind == "store":
        return Store(var(d["l"]), var(d["r"]))
    if kind == "null":
        return NullAssign(var(d["l"]), reason=d.get("reason", "null"))
    if kind == "assume":
        rhs = var(d["r"]) if d.get("r") is not None else None
        return Assume(var(d["l"]), rhs, d["eq"])
    if kind == "call":
        stmt = CallStmt(callee=d.get("callee"),
                        fp=var(d["fp"]) if d.get("fp") is not None else None)
        object.__setattr__(stmt, "targets", tuple(d.get("targets", ())))
        return stmt
    if kind == "extern":
        return ExternCall(
            d["name"],
            tuple(var(a) for a in d.get("args", ())),
            var(d["res"]) if d.get("res") is not None else None)
    if kind == "return":
        return ReturnStmt()
    if kind == "skip":
        return Skip(d.get("note", ""))
    raise ValueError(f"unknown statement kind {kind!r}")


def _stmt(stmt: Statement) -> Dict[str, Any]:
    return _stmt_to(stmt, _var, _obj)


def _load_stmt(d: Dict[str, Any]) -> Statement:
    return _stmt_from(d, _load_var, _load_obj)


def _span(span: Optional[Span]) -> Optional[List[Any]]:
    if span is None:
        return None
    return [span.line, span.column, span.end_line, span.end_column]


def _load_span(data: Optional[List[Any]]) -> Optional[Span]:
    if data is None:
        return None
    return Span(data[0], data[1], data[2], data[3])


def program_to_dict(program: Program) -> Dict[str, Any]:
    """A JSON-safe dict capturing the whole program."""
    functions: Dict[str, Any] = {}
    for name, fn in program.functions.items():
        cfg = fn.cfg
        functions[name] = {
            "params": [_var(p) for p in fn.params],
            "locals": sorted((_var(v) for v in fn.locals),
                             key=lambda d: (d["n"], d["f"] or "")),
            "entry": cfg.entry,
            "exit": cfg.exit,
            "stmts": [_stmt(cfg.stmt(i)) for i in cfg.nodes()],
            "succs": [list(cfg.successors(i)) for i in cfg.nodes()],
        }
        spans = [_span(cfg.span(i)) for i in cfg.nodes()]
        if any(s is not None for s in spans):
            functions[name]["spans"] = spans
    return {
        "version": FORMAT_VERSION,
        "entry": program.entry,
        "globals": sorted((_var(g) for g in program.globals),
                          key=lambda d: d["n"]),
        "functions": functions,
    }


def program_from_dict(data: Dict[str, Any]) -> Program:
    """Inverse of :func:`program_to_dict`."""
    if data.get("version") not in _READABLE_VERSIONS:
        raise ValueError(f"unsupported IR format version "
                         f"{data.get('version')!r}")
    functions: Dict[str, Function] = {}
    for name, fd in data["functions"].items():
        cfg = CFG(name)
        # Node 0 (the entry Skip) was created by the constructor; replace
        # its statement and append the rest.
        stmts = [_load_stmt(s) for s in fd["stmts"]]
        cfg.set_stmt(0, stmts[0])
        for stmt in stmts[1:]:
            cfg.add_node(stmt)
        for src, succs in enumerate(fd["succs"]):
            for dst in succs:
                cfg.add_edge(src, dst)
        for idx, span_data in enumerate(fd.get("spans", ())):
            cfg.set_span(idx, _load_span(span_data))
        cfg.entry = fd["entry"]
        cfg.exit = fd["exit"]
        fn = Function(name=name,
                      params=[_load_var(p) for p in fd["params"]],
                      locals={_load_var(v) for v in fd["locals"]},
                      cfg=cfg)
        functions[name] = fn
    return Program(functions, entry=data["entry"],
                   globals_={_load_var(g) for g in data["globals"]})


def save_program(program: Program, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(program_to_dict(program), handle)


def load_program(path: str) -> Program:
    with open(path, "r") as handle:
        return program_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# clusters and slices (the parallel backend's unit of shipment)
# ----------------------------------------------------------------------

def _obj_key(d: Dict[str, Any]) -> tuple:
    """Canonical sort key for a serialized MemObject dict."""
    if "alloc" in d:
        return (1, d["alloc"], "")
    return (0, d["n"], d["f"] or "")


def _loc(loc: Loc) -> List[Any]:
    return [loc.function, loc.index]


def _load_loc(data: List[Any]) -> Loc:
    return Loc(data[0], data[1])


def slice_to_dict(slice_: "RelevantSlice") -> Dict[str, Any]:
    """A JSON-safe dict for one Algorithm 1 slice (canonically sorted)."""
    return {
        "cluster": sorted((_obj(o) for o in slice_.cluster), key=_obj_key),
        "vp": sorted((_obj(o) for o in slice_.vp), key=_obj_key),
        "stmts": sorted(_loc(loc) for loc in slice_.statements),
    }


def slice_from_dict(data: Dict[str, Any]) -> "RelevantSlice":
    """Inverse of :func:`slice_to_dict`."""
    from ..core.relevant import RelevantSlice
    return RelevantSlice(
        cluster=frozenset(_load_obj(d) for d in data["cluster"]),
        vp=frozenset(_load_obj(d) for d in data["vp"]),
        statements=frozenset(_load_loc(d) for d in data["stmts"]))


def cluster_to_dict(cluster: "Cluster") -> Dict[str, Any]:
    """A JSON-safe dict for one cascade cluster, parent provenance
    included (the process backend reconstructs the exact sibling-shared
    FSCI setup from it)."""
    out: Dict[str, Any] = {
        "members": sorted((_obj(o) for o in cluster.members), key=_obj_key),
        "slice": slice_to_dict(cluster.slice),
        "origin": cluster.origin,
        "parent_size": cluster.parent_size,
    }
    if cluster.parent_slice is not None:
        out["parent_slice"] = slice_to_dict(cluster.parent_slice)
    return out


def cluster_from_dict(data: Dict[str, Any]) -> "Cluster":
    """Inverse of :func:`cluster_to_dict`."""
    from ..core.clusters import Cluster
    parent = data.get("parent_slice")
    return Cluster(
        members=frozenset(_load_obj(d) for d in data["members"]),
        slice=slice_from_dict(data["slice"]),
        origin=data["origin"],
        parent_size=data["parent_size"],
        parent_slice=slice_from_dict(parent) if parent is not None else None)


# ----------------------------------------------------------------------
# interned wire encoding (symbols shipped once, referenced by index)
# ----------------------------------------------------------------------

def _mem_key(o: MemObject) -> tuple:
    """Canonical sort key directly on a MemObject — the object-side twin
    of :func:`_obj_key`, so wire and plain encodings order collections
    identically."""
    if isinstance(o, AllocSite):
        return (1, o.label, "")
    return (0, o.name, o.function or "")


class SymbolTable:
    """Interns ``Var``/``AllocSite`` symbols and function names to dense
    wire indices.

    ``syms`` is the JSON-safe symbol table shipped alongside the wire
    dicts: an ``AllocSite`` encodes as its bare label string, a ``Var``
    as ``[name]`` (global) or ``[name, fn_index]`` — the string/list
    split is the type tag.  ``fnames`` is the parallel function-name
    table; variables' owning functions, call targets and slice locations
    all refer into it, so a function's name crosses the wire once no
    matter how many statements mention it.  Indices are assigned in
    first-reference order, so encoding the same values in the same order
    yields byte-identical tables regardless of hash seed.
    """

    __slots__ = ("_ids", "syms", "_fn_ids", "fnames")

    def __init__(self) -> None:
        self._ids: Dict[MemObject, int] = {}
        self.syms: List[Any] = []
        self._fn_ids: Dict[str, int] = {}
        self.fnames: List[str] = []

    def __len__(self) -> int:
        return len(self.syms)

    def ref(self, obj: MemObject) -> int:
        """The wire index of ``obj``, interning it on first use."""
        idx = self._ids.get(obj)
        if idx is None:
            idx = len(self.syms)
            self._ids[obj] = idx
            if isinstance(obj, AllocSite):
                self.syms.append(obj.label)
            elif obj.function is None:
                self.syms.append([obj.name])
            else:
                self.syms.append([obj.name, self.fref(obj.function)])
        return idx

    def fref(self, name: str) -> int:
        """The wire index of function name ``name``."""
        idx = self._fn_ids.get(name)
        if idx is None:
            idx = len(self.fnames)
            self._fn_ids[name] = idx
            self.fnames.append(name)
        return idx

    def clone(self) -> "SymbolTable":
        """An independent copy — per-payload tails must not leak between
        sibling clusters sharing one base table."""
        out = SymbolTable()
        out._ids = dict(self._ids)
        out.syms = list(self.syms)
        out._fn_ids = dict(self._fn_ids)
        out.fnames = list(self.fnames)
        return out


def decode_symbols(syms: List[Any], fnames: List[str]) -> List[MemObject]:
    """Materialize a shipped symbol table back into objects."""
    out: List[MemObject] = []
    for s in syms:
        if isinstance(s, str):
            out.append(AllocSite(s))
        elif len(s) == 1:
            out.append(Var(s[0], None))
        else:
            out.append(Var(s[0], fnames[s[1]]))
    return out


# Wire statements are arrays ``[kind_code, ...operands]`` rather than
# keyed dicts: a sliced sub-program is mostly Skip("sliced") markers and
# call sites, so per-statement key strings would dominate the shipped
# bytes.  The arrays are packed from / unpacked to the exact dicts the
# shared statement codec produces, so the two layers cannot drift.
_WIRE_KINDS = ("copy", "addr", "load", "store", "null", "assume", "call",
               "extern", "return", "skip")
_WIRE_CODE = {k: i for i, k in enumerate(_WIRE_KINDS)}
#: The overwhelmingly common Skip note in shipped sub-programs; packed
#: as a bare ``[code]``.
_SLICED_NOTE = "sliced"


def _pack_stmt(d: Dict[str, Any], fref: Any) -> List[Any]:
    kind = d["k"]
    code = _WIRE_CODE[kind]
    if kind in ("copy", "load", "store"):
        return [code, d["l"], d["r"]]
    if kind == "addr":
        return [code, d["l"], d["t"]]
    if kind == "null":
        reason = d.get("reason", "null")
        return [code, d["l"]] if reason == "null" else [code, d["l"], reason]
    if kind == "assume":
        return [code, d["l"], d["r"], 1 if d["eq"] else 0]
    if kind == "call":
        callee = d["callee"]
        return [code, fref(callee) if callee is not None else None,
                d["fp"], [fref(t) for t in d["targets"]]]
    if kind == "extern":
        return [code, d["name"], d["args"], d["res"]]
    if kind == "return":
        return [code]
    note = d.get("note", "")
    return [code] if note == _SLICED_NOTE else [code, note]


def _unpack_stmt(a: List[Any], fnames: List[str]) -> Dict[str, Any]:
    kind = _WIRE_KINDS[a[0]]
    if kind in ("copy", "load", "store"):
        return {"k": kind, "l": a[1], "r": a[2]}
    if kind == "addr":
        return {"k": kind, "l": a[1], "t": a[2]}
    if kind == "null":
        out: Dict[str, Any] = {"k": kind, "l": a[1]}
        if len(a) > 2:
            out["reason"] = a[2]
        return out
    if kind == "assume":
        return {"k": kind, "l": a[1], "r": a[2], "eq": bool(a[3])}
    if kind == "call":
        return {"k": kind,
                "callee": fnames[a[1]] if a[1] is not None else None,
                "fp": a[2], "targets": [fnames[t] for t in a[3]]}
    if kind == "extern":
        return {"k": kind, "name": a[1], "args": a[2], "res": a[3]}
    if kind == "return":
        return {"k": kind}
    return {"k": kind, "note": a[1] if len(a) > 1 else _SLICED_NOTE}


def program_to_wire(program: Program, table: SymbolTable) -> Dict[str, Any]:
    """Like :func:`program_to_dict` with every symbol replaced by its
    table index.  Structure (and therefore the decoder's traversal) is
    otherwise identical; collections keep the plain format's canonical
    symbol order."""
    ref = table.ref
    functions: Dict[str, Any] = {}
    for name, fn in program.functions.items():
        cfg = fn.cfg
        functions[name] = {
            "params": [ref(p) for p in fn.params],
            "locals": [ref(v) for v in sorted(fn.locals, key=_mem_key)],
            "entry": cfg.entry,
            "exit": cfg.exit,
            "stmts": [_pack_stmt(_stmt_to(cfg.stmt(i), ref, ref), table.fref)
                      for i in cfg.nodes()],
            "succs": [list(cfg.successors(i)) for i in cfg.nodes()],
        }
    return {
        "entry": program.entry,
        "globals": [ref(g) for g in sorted(program.globals, key=_mem_key)],
        "functions": functions,
    }


def program_from_wire(data: Dict[str, Any], objs: List[MemObject],
                      fnames: List[str]) -> Program:
    """Inverse of :func:`program_to_wire` given the decoded symbol list
    and the function-name table.

    Spans are not part of the wire format: shipped sub-programs drop
    them on purpose (fingerprint stability), so nothing is lost.
    """
    sym = objs.__getitem__
    functions: Dict[str, Function] = {}
    for name, fd in data["functions"].items():
        cfg = CFG(name)
        stmts = [_stmt_from(_unpack_stmt(s, fnames), sym, sym)
                 for s in fd["stmts"]]
        cfg.set_stmt(0, stmts[0])
        for stmt in stmts[1:]:
            cfg.add_node(stmt)
        for src, succs in enumerate(fd["succs"]):
            for dst in succs:
                cfg.add_edge(src, dst)
        cfg.entry = fd["entry"]
        cfg.exit = fd["exit"]
        functions[name] = Function(
            name=name,
            params=[objs[i] for i in fd["params"]],
            locals={objs[i] for i in fd["locals"]},
            cfg=cfg)
    return Program(functions, entry=data["entry"],
                   globals_={objs[i] for i in data["globals"]})


def slice_to_wire(slice_: "RelevantSlice",
                  table: SymbolTable) -> Dict[str, Any]:
    """Wire twin of :func:`slice_to_dict`."""
    ref = table.ref
    return {
        "cluster": [ref(o) for o in sorted(slice_.cluster, key=_mem_key)],
        "vp": [ref(o) for o in sorted(slice_.vp, key=_mem_key)],
        "stmts": [[table.fref(fn), idx] for fn, idx in
                  sorted((loc.function, loc.index)
                         for loc in slice_.statements)],
    }


def slice_from_wire(data: Dict[str, Any], objs: List[MemObject],
                    fnames: List[str]) -> "RelevantSlice":
    """Inverse of :func:`slice_to_wire`."""
    from ..core.relevant import RelevantSlice
    return RelevantSlice(
        cluster=frozenset(objs[i] for i in data["cluster"]),
        vp=frozenset(objs[i] for i in data["vp"]),
        statements=frozenset(Loc(fnames[d[0]], d[1])
                             for d in data["stmts"]))


def cluster_to_wire(cluster: "Cluster", table: SymbolTable,
                    parent_wire: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Wire twin of :func:`cluster_to_dict`.  ``parent_wire`` lets the
    caller reuse an already-encoded parent slice (sibling clusters
    ship one shared encoding)."""
    out: Dict[str, Any] = {
        "members": [table.ref(o)
                    for o in sorted(cluster.members, key=_mem_key)],
        "slice": slice_to_wire(cluster.slice, table),
        "origin": cluster.origin,
        "parent_size": cluster.parent_size,
    }
    if cluster.parent_slice is not None:
        out["parent_slice"] = (parent_wire if parent_wire is not None
                               else slice_to_wire(cluster.parent_slice, table))
    return out


def cluster_from_wire(data: Dict[str, Any], objs: List[MemObject],
                      fnames: List[str]) -> "Cluster":
    """Inverse of :func:`cluster_to_wire`."""
    from ..core.clusters import Cluster
    parent = data.get("parent_slice")
    return Cluster(
        members=frozenset(objs[i] for i in data["members"]),
        slice=slice_from_wire(data["slice"], objs, fnames),
        origin=data["origin"],
        parent_size=data["parent_size"],
        parent_slice=(slice_from_wire(parent, objs, fnames)
                      if parent is not None else None))

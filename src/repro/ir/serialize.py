"""JSON (de)serialization of IR programs, clusters and slices.

Lets tools cache normalized programs (frontend runs once), ship programs
between processes for real parallel analysis, and snapshot regression
inputs.  The format is versioned and round-trips exactly:

    data = program_to_dict(prog)
    prog2 = program_from_dict(data)
    assert format_program(prog) == format_program(prog2)

Beyond whole programs, the module round-trips the cascade's work units so
the process-pool backend can ship one cluster per task:
:func:`slice_to_dict` / :func:`slice_from_dict` handle Algorithm 1
slices, and :func:`cluster_to_dict` / :func:`cluster_from_dict` handle
:class:`~repro.core.clusters.Cluster` (members, slice, origin, parent
provenance).  All collection fields are emitted in a canonical sorted
order, so equal values serialize to byte-identical JSON — the summary
cache hashes these dicts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .cfg import CFG, Loc, Span
from .program import Function, Program
from .statements import (
    AddrOf,
    AllocSite,
    Assume,
    CallStmt,
    Copy,
    ExternCall,
    Load,
    MemObject,
    NullAssign,
    ReturnStmt,
    Skip,
    Statement,
    Store,
    Var,
)

#: Version 2 added optional source spans and the NullAssign reason tag;
#: version 3 added ExternCall (library-call) statements.  Older dumps
#: (no spans / no extern calls) still load.
FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)


def _var(v: Var) -> Dict[str, Any]:
    return {"n": v.name, "f": v.function}


def _obj(o: MemObject) -> Dict[str, Any]:
    if isinstance(o, AllocSite):
        return {"alloc": o.label}
    return _var(o)


def _load_var(d: Dict[str, Any]) -> Var:
    return Var(d["n"], d.get("f"))


def _load_obj(d: Dict[str, Any]) -> MemObject:
    if "alloc" in d:
        return AllocSite(d["alloc"])
    return _load_var(d)


def _stmt(stmt: Statement) -> Dict[str, Any]:
    if isinstance(stmt, Copy):
        return {"k": "copy", "l": _var(stmt.lhs), "r": _var(stmt.rhs)}
    if isinstance(stmt, AddrOf):
        return {"k": "addr", "l": _var(stmt.lhs), "t": _obj(stmt.target)}
    if isinstance(stmt, Load):
        return {"k": "load", "l": _var(stmt.lhs), "r": _var(stmt.rhs)}
    if isinstance(stmt, Store):
        return {"k": "store", "l": _var(stmt.lhs), "r": _var(stmt.rhs)}
    if isinstance(stmt, NullAssign):
        out: Dict[str, Any] = {"k": "null", "l": _var(stmt.lhs)}
        if stmt.reason != "null":
            out["reason"] = stmt.reason
        return out
    if isinstance(stmt, Assume):
        return {"k": "assume", "l": _var(stmt.lhs),
                "r": _var(stmt.rhs) if stmt.rhs is not None else None,
                "eq": stmt.equal}
    if isinstance(stmt, CallStmt):
        return {"k": "call", "callee": stmt.callee,
                "fp": _var(stmt.fp) if stmt.fp is not None else None,
                "targets": list(stmt.targets)}
    if isinstance(stmt, ExternCall):
        return {"k": "extern", "name": stmt.name,
                "args": [_var(a) for a in stmt.args],
                "res": _var(stmt.result) if stmt.result is not None
                else None}
    if isinstance(stmt, ReturnStmt):
        return {"k": "return"}
    if isinstance(stmt, Skip):
        return {"k": "skip", "note": stmt.note}
    raise TypeError(f"unserializable statement {type(stmt).__name__}")


def _load_stmt(d: Dict[str, Any]) -> Statement:
    kind = d["k"]
    if kind == "copy":
        return Copy(_load_var(d["l"]), _load_var(d["r"]))
    if kind == "addr":
        return AddrOf(_load_var(d["l"]), _load_obj(d["t"]))
    if kind == "load":
        return Load(_load_var(d["l"]), _load_var(d["r"]))
    if kind == "store":
        return Store(_load_var(d["l"]), _load_var(d["r"]))
    if kind == "null":
        return NullAssign(_load_var(d["l"]), reason=d.get("reason", "null"))
    if kind == "assume":
        rhs = _load_var(d["r"]) if d.get("r") is not None else None
        return Assume(_load_var(d["l"]), rhs, d["eq"])
    if kind == "call":
        stmt = CallStmt(callee=d.get("callee"),
                        fp=_load_var(d["fp"]) if d.get("fp") else None)
        object.__setattr__(stmt, "targets", tuple(d.get("targets", ())))
        return stmt
    if kind == "extern":
        return ExternCall(
            d["name"],
            tuple(_load_var(a) for a in d.get("args", ())),
            _load_var(d["res"]) if d.get("res") is not None else None)
    if kind == "return":
        return ReturnStmt()
    if kind == "skip":
        return Skip(d.get("note", ""))
    raise ValueError(f"unknown statement kind {kind!r}")


def _span(span: Optional[Span]) -> Optional[List[Any]]:
    if span is None:
        return None
    return [span.line, span.column, span.end_line, span.end_column]


def _load_span(data: Optional[List[Any]]) -> Optional[Span]:
    if data is None:
        return None
    return Span(data[0], data[1], data[2], data[3])


def program_to_dict(program: Program) -> Dict[str, Any]:
    """A JSON-safe dict capturing the whole program."""
    functions: Dict[str, Any] = {}
    for name, fn in program.functions.items():
        cfg = fn.cfg
        functions[name] = {
            "params": [_var(p) for p in fn.params],
            "locals": sorted((_var(v) for v in fn.locals),
                             key=lambda d: (d["n"], d["f"] or "")),
            "entry": cfg.entry,
            "exit": cfg.exit,
            "stmts": [_stmt(cfg.stmt(i)) for i in cfg.nodes()],
            "succs": [list(cfg.successors(i)) for i in cfg.nodes()],
        }
        spans = [_span(cfg.span(i)) for i in cfg.nodes()]
        if any(s is not None for s in spans):
            functions[name]["spans"] = spans
    return {
        "version": FORMAT_VERSION,
        "entry": program.entry,
        "globals": sorted((_var(g) for g in program.globals),
                          key=lambda d: d["n"]),
        "functions": functions,
    }


def program_from_dict(data: Dict[str, Any]) -> Program:
    """Inverse of :func:`program_to_dict`."""
    if data.get("version") not in _READABLE_VERSIONS:
        raise ValueError(f"unsupported IR format version "
                         f"{data.get('version')!r}")
    functions: Dict[str, Function] = {}
    for name, fd in data["functions"].items():
        cfg = CFG(name)
        # Node 0 (the entry Skip) was created by the constructor; replace
        # its statement and append the rest.
        stmts = [_load_stmt(s) for s in fd["stmts"]]
        cfg.set_stmt(0, stmts[0])
        for stmt in stmts[1:]:
            cfg.add_node(stmt)
        for src, succs in enumerate(fd["succs"]):
            for dst in succs:
                cfg.add_edge(src, dst)
        for idx, span_data in enumerate(fd.get("spans", ())):
            cfg.set_span(idx, _load_span(span_data))
        cfg.entry = fd["entry"]
        cfg.exit = fd["exit"]
        fn = Function(name=name,
                      params=[_load_var(p) for p in fd["params"]],
                      locals={_load_var(v) for v in fd["locals"]},
                      cfg=cfg)
        functions[name] = fn
    return Program(functions, entry=data["entry"],
                   globals_={_load_var(g) for g in data["globals"]})


def save_program(program: Program, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(program_to_dict(program), handle)


def load_program(path: str) -> Program:
    with open(path, "r") as handle:
        return program_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# clusters and slices (the parallel backend's unit of shipment)
# ----------------------------------------------------------------------

def _obj_key(d: Dict[str, Any]) -> tuple:
    """Canonical sort key for a serialized MemObject dict."""
    if "alloc" in d:
        return (1, d["alloc"], "")
    return (0, d["n"], d["f"] or "")


def _loc(loc: Loc) -> List[Any]:
    return [loc.function, loc.index]


def _load_loc(data: List[Any]) -> Loc:
    return Loc(data[0], data[1])


def slice_to_dict(slice_: "RelevantSlice") -> Dict[str, Any]:
    """A JSON-safe dict for one Algorithm 1 slice (canonically sorted)."""
    return {
        "cluster": sorted((_obj(o) for o in slice_.cluster), key=_obj_key),
        "vp": sorted((_obj(o) for o in slice_.vp), key=_obj_key),
        "stmts": sorted(_loc(loc) for loc in slice_.statements),
    }


def slice_from_dict(data: Dict[str, Any]) -> "RelevantSlice":
    """Inverse of :func:`slice_to_dict`."""
    from ..core.relevant import RelevantSlice
    return RelevantSlice(
        cluster=frozenset(_load_obj(d) for d in data["cluster"]),
        vp=frozenset(_load_obj(d) for d in data["vp"]),
        statements=frozenset(_load_loc(d) for d in data["stmts"]))


def cluster_to_dict(cluster: "Cluster") -> Dict[str, Any]:
    """A JSON-safe dict for one cascade cluster, parent provenance
    included (the process backend reconstructs the exact sibling-shared
    FSCI setup from it)."""
    out: Dict[str, Any] = {
        "members": sorted((_obj(o) for o in cluster.members), key=_obj_key),
        "slice": slice_to_dict(cluster.slice),
        "origin": cluster.origin,
        "parent_size": cluster.parent_size,
    }
    if cluster.parent_slice is not None:
        out["parent_slice"] = slice_to_dict(cluster.parent_slice)
    return out


def cluster_from_dict(data: Dict[str, Any]) -> "Cluster":
    """Inverse of :func:`cluster_to_dict`."""
    from ..core.clusters import Cluster
    parent = data.get("parent_slice")
    return Cluster(
        members=frozenset(_load_obj(d) for d in data["members"]),
        slice=slice_from_dict(data["slice"]),
        origin=data["origin"],
        parent_size=data["parent_size"],
        parent_slice=slice_from_dict(parent) if parent is not None else None)

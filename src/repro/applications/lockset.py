"""Lockset computation on top of demand-driven alias queries.

The paper's original motivation was "static data race detection for Linux
device drivers": there, one only needs **must-aliases of lock pointers**,
so only clusters containing lock pointers are analyzed — and since "a
lock pointer can alias only to another lock pointer", those clusters are
made up solely of lock pointers.  This module implements that pipeline:

1. find lock pointers: arguments of recognized lock/unlock primitives;
2. resolve each lock/unlock site to the concrete lock *objects* it
   operates on, using the bootstrapped analysis (must = singleton
   may-points-to at the site, the standard lockset discipline);
3. run a forward must-held dataflow (intersection join) over the
   supergraph to compute the lockset at every location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..analysis.dataflow import ForwardDataflow, Supergraph
from ..analysis.fsci import FSCI, FSCIResult
from ..ir import CallStmt, Loc, MemObject, Program, Statement, Var
from ..ir.program import param_var

#: Recognized locking primitives (first argument is the lock pointer).
LOCK_FUNCTIONS = {"lock", "spin_lock", "spin_lock_irqsave", "mutex_lock",
                  "pthread_mutex_lock", "read_lock", "write_lock",
                  "down", "acquire"}
UNLOCK_FUNCTIONS = {"unlock", "spin_unlock", "spin_unlock_irqrestore",
                    "mutex_unlock", "pthread_mutex_unlock", "read_unlock",
                    "write_unlock", "up", "release"}


@dataclass(frozen=True)
class LockSite:
    """One lock or unlock call site."""

    loc: Loc
    primitive: str
    pointer: Var
    is_lock: bool


def find_lock_sites(program: Program) -> List[LockSite]:
    """Lock/unlock call sites with the lock-pointer argument.

    By the parameter-conduit convention, the lock pointer is whatever was
    copied into ``<primitive>::$param0`` immediately before the call.
    """
    sites: List[LockSite] = []
    for name, fn in program.functions.items():
        cfg = fn.cfg
        for idx, stmt in cfg.statements():
            if not isinstance(stmt, CallStmt) or stmt.callee is None:
                continue
            primitive = stmt.callee
            is_lock = primitive in LOCK_FUNCTIONS
            if not is_lock and primitive not in UNLOCK_FUNCTIONS:
                continue
            pointer = _conduit_source(program, cfg, idx,
                                      param_var(primitive, 0))
            if pointer is not None:
                sites.append(LockSite(loc=Loc(name, idx),
                                      primitive=primitive,
                                      pointer=pointer, is_lock=is_lock))
    return sites


def _conduit_source(program: Program, cfg, call_idx: int,
                    conduit: Var) -> Optional[Var]:
    """Walk back from a call to the Copy that fills its first conduit."""
    from ..ir import Copy
    seen: Set[int] = set()
    frontier = list(cfg.predecessors(call_idx))
    steps = 0
    while frontier and steps < 64:
        steps += 1
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        stmt = cfg.stmt(node)
        if isinstance(stmt, Copy) and stmt.lhs == conduit:
            return stmt.rhs
        frontier.extend(cfg.predecessors(node))
    return None


def lock_pointers(program: Program) -> FrozenSet[Var]:
    """The set of pointers passed to lock/unlock primitives."""
    return frozenset(site.pointer for site in find_lock_sites(program))


class LocksetResult:
    """Must-held locks per location."""

    def __init__(self, engine: ForwardDataflow,
                 sites: List[LockSite],
                 resolution: Dict[Loc, FrozenSet[MemObject]]) -> None:
        self._engine = engine
        self.sites = sites
        self.resolution = resolution

    def held_before(self, loc: Loc) -> FrozenSet[MemObject]:
        state = self._engine.state_before(loc)
        return state if isinstance(state, frozenset) else frozenset()

    def held_after(self, loc: Loc) -> FrozenSet[MemObject]:
        state = self._engine.state_after(loc)
        return state if isinstance(state, frozenset) else frozenset()


#: The lockset lattice: TOP (haven't seen this point yet) or a lock set.
_TOP = None


class LocksetAnalysis:
    """Forward must-held-locks dataflow.

    ``resolver`` maps a lock site to the lock objects it certainly
    operates on (singleton may-points-to at the site); defaults to an
    FSCI pass over the whole program — callers doing it the paper's way
    pass a bootstrapped per-cluster analysis instead.
    """

    def __init__(self, program: Program,
                 fsci: Optional[FSCIResult] = None) -> None:
        self.program = program
        self.fsci = fsci if fsci is not None else FSCI(program).run()
        self.sites = find_lock_sites(program)
        self._by_loc: Dict[Loc, LockSite] = {s.loc: s for s in self.sites}

    def _resolve(self, site: LockSite) -> FrozenSet[MemObject]:
        pts = self.fsci.pts_before(site.loc, site.pointer)
        if len(pts) == 1:
            return pts  # must-alias: the classic singleton discipline
        return frozenset()  # ambiguous lock pointer: cannot claim "held"

    def run(self) -> LocksetResult:
        resolution = {s.loc: self._resolve(s) for s in self.sites}

        def transfer(loc: Loc, stmt: Statement, state):
            if state is _TOP:
                state = frozenset()
            site = self._by_loc.get(loc)
            if site is None:
                return state
            locks = resolution[loc]
            if site.is_lock:
                return state | locks
            # Unlock: ambiguous unlocks must clear everything they might
            # release; with singleton resolution this is exact.
            pts = self.fsci.pts_before(loc, site.pointer)
            return state - (pts or state)

        def join(a, b):
            if a is _TOP:
                return b
            if b is _TOP:
                return a
            return a & b  # must semantics

        # The primitives' bodies are irrelevant and, worse, routing the
        # state through them would meet (intersect) the locksets of every
        # call site.  Exclude them: calls to excluded functions fall
        # through in the supergraph.
        functions = set(self.program.functions) \
            - LOCK_FUNCTIONS - UNLOCK_FUNCTIONS
        graph = Supergraph(self.program, functions=functions)
        engine: ForwardDataflow = ForwardDataflow(
            graph, transfer, join, initial=frozenset(), bottom=_TOP)
        engine.run()
        return LocksetResult(engine, self.sites, resolution)

"""Data race warnings from locksets + alias information.

Two accesses race when they may touch the same shared object from
different threads with no common lock held.  Thread structure is given
explicitly (``thread_entries``): each entry function models a thread (a
driver's ioctl handler vs. its interrupt handler, say).

The alias side uses the bootstrapped analysis exactly as the paper
advertises: only the clusters containing accessed shared objects matter,
and negative queries die instantly on the Steensgaard partition check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..analysis.fsci import FSCIResult
from ..ir import (
    AllocSite,
    CallGraph,
    Copy,
    Load,
    Loc,
    MemObject,
    Program,
    Statement,
    Store,
    Var,
)
from .lockset import LocksetAnalysis, LocksetResult


@dataclass(frozen=True)
class Access:
    """One shared-memory access.

    ``threads`` is the set of thread entries whose execution can reach
    the access — a *set* because a function called from several thread
    entries runs in each of them.
    """

    loc: Loc
    obj: MemObject
    is_write: bool
    threads: FrozenSet[str]

    @property
    def thread(self) -> str:
        """Back-compat label: the sorted thread set joined with ``+``."""
        return "+".join(sorted(self.threads))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "write" if self.is_write else "read"
        return f"{kind} of {self.obj} at {self.loc} [{self.thread}]"


@dataclass(frozen=True)
class RaceWarning:
    first: Access
    second: Access

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"possible race: {self.first} vs {self.second}"


def _is_shared(obj: MemObject) -> bool:
    """Globals and heap objects are shared between threads."""
    if isinstance(obj, AllocSite):
        return True
    return obj.function is None


def collect_accesses(program: Program, fsci: FSCIResult,
                     thread_entries: Dict[str, FrozenSet[str]]
                     ) -> List[Access]:
    """Shared accesses per location.

    ``thread_entries`` maps every reachable function to the set of
    thread entries reaching it (use :func:`thread_assignment`).  Direct
    reads/writes of globals and stores/loads through pointers (resolved
    with the flow-sensitive points-to) are collected.
    """
    accesses: List[Access] = []
    for loc, stmt in program.statements():
        threads = thread_entries.get(loc.function)
        if not threads:
            continue
        if isinstance(stmt, Store):
            for obj in fsci.pts_before(loc, stmt.lhs):
                if _is_shared(obj):
                    accesses.append(Access(loc, obj, True, threads))
            if _is_shared(stmt.rhs):
                accesses.append(Access(loc, stmt.rhs, False, threads))
        elif isinstance(stmt, Load):
            for obj in fsci.pts_before(loc, stmt.rhs):
                if _is_shared(obj):
                    accesses.append(Access(loc, obj, False, threads))
        elif isinstance(stmt, Copy):
            if _is_shared(stmt.rhs):
                accesses.append(Access(loc, stmt.rhs, False, threads))
            if _is_shared(stmt.lhs):
                accesses.append(Access(loc, stmt.lhs, True, threads))
    return accesses


def thread_assignment(program: Program,
                      entries: Iterable[str]) -> Dict[str, FrozenSet[str]]:
    """Map each function to the *set* of thread entries it is reachable
    from.

    Representing shared callees as honest sets (not merged labels like
    ``"t1+t2"``) matters for soundness: two accesses inside a helper
    called from both threads can still race with each other, which a
    label-equality check would miss."""
    cg = CallGraph(program)
    assignment: Dict[str, Set[str]] = {}
    for entry in entries:
        for fn in cg.reachable_from(entry):
            assignment.setdefault(fn, set()).add(entry)
    return {fn: frozenset(s) for fn, s in assignment.items()}


class RaceDetector:
    """End-to-end: locksets + shared accesses -> warnings."""

    def __init__(self, program: Program, thread_entries: List[str],
                 lockset: Optional[LocksetAnalysis] = None) -> None:
        self.program = program
        self.thread_entries = list(thread_entries)
        self.lockset_analysis = lockset or LocksetAnalysis(program)

    def run(self) -> List[RaceWarning]:
        locksets: LocksetResult = self.lockset_analysis.run()
        fsci = self.lockset_analysis.fsci
        threads = thread_assignment(self.program, self.thread_entries)
        accesses = collect_accesses(self.program, fsci, threads)
        by_obj: Dict[MemObject, List[Access]] = {}
        for a in accesses:
            by_obj.setdefault(a.obj, []).append(a)
        warnings: List[RaceWarning] = []
        seen: Set[Tuple[Loc, Loc, MemObject]] = set()
        for obj, group in sorted(by_obj.items(), key=lambda kv: str(kv[0])):
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    if len(a.threads | b.threads) <= 1:
                        # Only a single thread can ever reach both
                        # accesses; any multi-entry overlap (including a
                        # shared helper reachable from both threads) can
                        # interleave and must be checked.
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    if locksets.held_before(a.loc) & locksets.held_before(b.loc):
                        continue  # a common lock protects both
                    key = (min(a.loc, b.loc), max(a.loc, b.loc), obj)
                    if key in seen:
                        continue
                    seen.add(key)
                    first, second = sorted((a, b), key=lambda x: x.loc)
                    warnings.append(RaceWarning(first, second))
        return warnings


RACE_RULE_ID = "repro-data-race"


def race_diagnostics(program: Program,
                     warnings: List[RaceWarning]) -> List["Diagnostic"]:
    """Render race warnings through the shared diagnostic pipeline, so
    the CLI emits them with the same text/JSON/SARIF machinery as the
    memory-safety checkers."""
    from ..core.report import Diagnostic, TraceStep
    out: List[Diagnostic] = []
    for w in warnings:
        first, second = w.first, w.second
        kind1 = "write" if first.is_write else "read"
        kind2 = "write" if second.is_write else "read"
        out.append(Diagnostic(
            rule_id=RACE_RULE_ID,
            severity="warning",
            message=(f"possible data race on {first.obj}: {kind1} in "
                     f"{first.loc.function} [{first.thread}] vs {kind2} "
                     f"in {second.loc.function} [{second.thread}] with "
                     "no common lock"),
            loc=first.loc,
            span=program.span_at(first.loc),
            file=program.source_path,
            checker="races",
            subject=str(first.obj),
            trace=(TraceStep(loc=second.loc,
                             span=program.span_at(second.loc),
                             note=f"conflicting {kind2} in "
                                  f"{second.loc.function} "
                                  f"[{second.thread}]"),),
        ))
    return out

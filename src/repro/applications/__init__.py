"""Applications built on the bootstrapped alias analysis."""

from .lockset import (
    LOCK_FUNCTIONS,
    UNLOCK_FUNCTIONS,
    LockSite,
    LocksetAnalysis,
    LocksetResult,
    find_lock_sites,
    lock_pointers,
)
from .races import (
    RACE_RULE_ID,
    Access,
    RaceDetector,
    RaceWarning,
    collect_accesses,
    race_diagnostics,
    thread_assignment,
)

__all__ = [
    "Access", "LOCK_FUNCTIONS", "LockSite", "LocksetAnalysis",
    "LocksetResult", "RACE_RULE_ID", "RaceDetector", "RaceWarning",
    "UNLOCK_FUNCTIONS", "collect_accesses", "find_lock_sites",
    "lock_pointers", "race_diagnostics", "thread_assignment",
]

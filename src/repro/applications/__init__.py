"""Applications built on the bootstrapped alias analysis."""

from .lockset import (
    LOCK_FUNCTIONS,
    UNLOCK_FUNCTIONS,
    LockSite,
    LocksetAnalysis,
    LocksetResult,
    find_lock_sites,
    lock_pointers,
)
from .races import (
    Access,
    RaceDetector,
    RaceWarning,
    collect_accesses,
    thread_assignment,
)

__all__ = [
    "Access", "LOCK_FUNCTIONS", "LockSite", "LocksetAnalysis",
    "LocksetResult", "RaceDetector", "RaceWarning", "UNLOCK_FUNCTIONS",
    "collect_accesses", "find_lock_sites", "lock_pointers",
    "thread_assignment",
]

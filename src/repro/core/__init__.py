"""Bootstrapping core: partitions, slices, clusters, cascade, queries."""

from .bootstrap import BootstrapAnalyzer, BootstrapConfig, BootstrapResult
from .cascade import CascadeConfig, CascadeResult, run_cascade
from .contexts import (
    context_count,
    context_sensitivity_gain,
    enumerate_contexts,
    points_to_by_context,
)
from .clusters import (
    DEFAULT_ANDERSEN_THRESHOLD,
    Cluster,
    andersen_refine,
    oneflow_refine,
)
from .parallel import ParallelReport, ParallelRunner, greedy_parts
from .partitions import Partitioning, PartitionStats
from .queries import DemandSelection, demand_alias_sets, select_clusters
from .report import cascade_summary, render_report
from .relevant import RelevantSlice, dovetail_schedule, relevant_statements

__all__ = [
    "BootstrapAnalyzer", "BootstrapConfig", "BootstrapResult",
    "CascadeConfig", "CascadeResult", "Cluster",
    "DEFAULT_ANDERSEN_THRESHOLD", "DemandSelection", "ParallelReport",
    "ParallelRunner", "Partitioning", "PartitionStats", "RelevantSlice",
    "andersen_refine", "demand_alias_sets", "greedy_parts",
    "cascade_summary", "context_count", "dovetail_schedule", "context_sensitivity_gain", "enumerate_contexts", "oneflow_refine", "points_to_by_context", "relevant_statements", "render_report", "run_cascade",
    "select_clusters",
]

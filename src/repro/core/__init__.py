"""Bootstrapping core: partitions, slices, clusters, cascade, queries."""

from .bootstrap import BootstrapAnalyzer, BootstrapConfig, BootstrapResult
from .cascade import CascadeConfig, CascadeResult, run_cascade
from .contexts import (
    context_count,
    context_sensitivity_gain,
    enumerate_contexts,
    points_to_by_context,
)
from .clusters import (
    DEFAULT_ANDERSEN_THRESHOLD,
    Cluster,
    andersen_refine,
    oneflow_refine,
)
from .parallel import ParallelReport, ParallelRunner, greedy_parts
from .partitions import Partitioning, PartitionStats
from .queries import DemandSelection, demand_alias_sets, select_clusters
from .report import (
    Diagnostic,
    TraceStep,
    cascade_summary,
    dedup_diagnostics,
    diagnostics_to_dict,
    diagnostics_to_sarif,
    render_diagnostics_text,
    render_report,
    suppress_diagnostics,
)
from .relevant import RelevantSlice, dovetail_schedule, relevant_statements

__all__ = [
    "BootstrapAnalyzer", "BootstrapConfig", "BootstrapResult",
    "CascadeConfig", "CascadeResult", "Cluster",
    "DEFAULT_ANDERSEN_THRESHOLD", "DemandSelection", "Diagnostic",
    "ParallelReport",
    "ParallelRunner", "Partitioning", "PartitionStats", "RelevantSlice",
    "TraceStep", "andersen_refine", "demand_alias_sets", "greedy_parts",
    "cascade_summary", "context_count", "dedup_diagnostics",
    "diagnostics_to_dict", "diagnostics_to_sarif", "dovetail_schedule", "context_sensitivity_gain", "enumerate_contexts", "oneflow_refine", "points_to_by_context", "relevant_statements", "render_diagnostics_text", "render_report", "run_cascade",
    "select_clusters", "suppress_diagnostics",
]

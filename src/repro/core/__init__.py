"""Bootstrapping core: partitions, slices, clusters, cascade, queries."""

from .bootstrap import BootstrapAnalyzer, BootstrapConfig, BootstrapResult
from .cascade import CascadeConfig, CascadeResult, run_cascade
from .contexts import (
    context_count,
    context_sensitivity_gain,
    enumerate_contexts,
    points_to_by_context,
)
from .clusters import (
    DEFAULT_ANDERSEN_THRESHOLD,
    Cluster,
    andersen_refine,
    oneflow_refine,
)
from .parallel import (
    ParallelReport,
    ParallelRunner,
    cluster_cost,
    greedy_parts,
    lpt_parts,
    schedule_indices,
)
from .partitions import Partitioning, PartitionStats
from .faults import (
    FAULT_KINDS,
    NET_FAULT_KINDS,
    ChaosProxy,
    FaultSpec,
    NetFault,
    attach_faults,
    garble_bytes,
    parse_fault_arg,
)
from .resilience import (
    PRECISION_LEVELS,
    CircuitBreaker,
    ClusterExecutionError,
    RunPolicy,
    coarsest,
    degrade_ladder,
    degraded_outcome,
    is_degraded,
    validate_outcome,
)
from .shipping import (
    analyze_payload,
    analyze_payload_batch,
    build_payload,
    cluster_fingerprints,
    cluster_outcome,
    cluster_subprogram,
    payload_fingerprint,
)
from .summary_cache import SummaryCache
from .queries import (
    DemandSelection,
    demand_alias_sets,
    resolve_pointer,
    select_clusters,
)
from .report import (
    Diagnostic,
    TraceStep,
    cascade_summary,
    dedup_diagnostics,
    diagnostics_to_dict,
    diagnostics_to_sarif,
    percentile,
    render_diagnostics_text,
    render_report,
    size_summary,
    suppress_diagnostics,
)
from .relevant import RelevantSlice, dovetail_schedule, relevant_statements

__all__ = [
    "BootstrapAnalyzer", "BootstrapConfig", "BootstrapResult",
    "CascadeConfig", "CascadeResult", "CircuitBreaker", "Cluster",
    "ClusterExecutionError",
    "DEFAULT_ANDERSEN_THRESHOLD", "DemandSelection", "Diagnostic",
    "ChaosProxy",
    "FAULT_KINDS", "FaultSpec", "NET_FAULT_KINDS", "NetFault",
    "PRECISION_LEVELS", "ParallelReport",
    "RunPolicy", "attach_faults", "coarsest", "degrade_ladder",
    "degraded_outcome", "garble_bytes", "is_degraded", "parse_fault_arg",
    "validate_outcome",
    "ParallelRunner", "Partitioning", "PartitionStats", "RelevantSlice",
    "SummaryCache",
    "TraceStep", "analyze_payload", "analyze_payload_batch",
    "andersen_refine", "build_payload", "cluster_cost",
    "cluster_fingerprints", "cluster_outcome",
    "cluster_subprogram", "demand_alias_sets", "greedy_parts", "lpt_parts",
    "payload_fingerprint", "resolve_pointer", "schedule_indices",
    "cascade_summary", "context_count", "dedup_diagnostics",
    "diagnostics_to_dict", "diagnostics_to_sarif", "dovetail_schedule", "context_sensitivity_gain", "enumerate_contexts", "oneflow_refine", "points_to_by_context", "relevant_statements", "percentile", "render_diagnostics_text", "render_report", "run_cascade", "size_summary",
    "select_clusters", "suppress_diagnostics",
]

"""Steensgaard partitioning — stage one of the cascade.

Thin, well-typed wrappers around :class:`SteensgaardResult` that the
cascade, the parallel scheduler and the Figure 1 harness consume:
partition enumeration, size statistics and size-frequency histograms.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..analysis.steensgaard import Steensgaard, SteensgaardResult
from ..ir import MemObject, Program, Var


@dataclass(frozen=True)
class PartitionStats:
    """Summary statistics for a set of partitions/clusters."""

    count: int
    max_size: int
    total_members: int
    histogram: Tuple[Tuple[int, int], ...]  # (size, frequency), ascending

    @classmethod
    def of(cls, groups: Iterable[FrozenSet[MemObject]]) -> "PartitionStats":
        sizes = [len(g) for g in groups]
        hist = tuple(sorted(Counter(sizes).items()))
        return cls(count=len(sizes), max_size=max(sizes, default=0),
                   total_members=sum(sizes), histogram=hist)


class Partitioning:
    """The partitions of a program's pointers plus the hierarchy oracle."""

    def __init__(self, program: Program,
                 result: Optional[SteensgaardResult] = None) -> None:
        self.program = program
        self.result = result if result is not None else Steensgaard(program).run()

    def partitions(self, min_size: int = 1) -> List[FrozenSet[MemObject]]:
        return [p for p in self.result.partitions() if len(p) >= min_size]

    def partition_of(self, p: MemObject) -> FrozenSet[MemObject]:
        return self.result.partition_of(p)

    def stats(self) -> PartitionStats:
        return PartitionStats.of(self.partitions())

    def size_histogram(self) -> Dict[int, int]:
        """Figure 1's series: frequency of each partition size."""
        return dict(self.stats().histogram)

    def pointer_partitions(self) -> List[FrozenSet[MemObject]]:
        """Partitions containing at least one variable (clusters worth
        analyzing; pure-allocation-site classes carry no queries)."""
        return [p for p in self.partitions()
                if any(isinstance(m, Var) for m in p)]

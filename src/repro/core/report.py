"""Human-readable analysis reports and the shared diagnostic pipeline.

The cascade produces a lot of structure (partitions, slices, clusters,
summaries, timings); this module renders it as the markdown report the
CLI's ``analyze --report`` emits, and as a JSON-serializable dict for
tooling.

It also owns the :class:`Diagnostic` model every analysis client (the
memory-safety checkers, the race detector) reports through, plus the
text / JSON / SARIF 2.1.0 emitters.  Keeping the model here rather than
in :mod:`repro.checkers` avoids an import cycle: checkers depend on
core, never the other way around.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..bench.metrics import format_table
from ..ir import Loc, Program, Span, Var
from .bootstrap import BootstrapResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Severity ranking used when deduplication keeps the worst finding.
SEVERITY_ORDER = {"error": 0, "warning": 1, "note": 2}


@dataclass(frozen=True)
class TraceStep:
    """One hop of a diagnostic's witness trace (e.g. the ``free`` that
    made a later dereference dangle)."""

    loc: Loc
    span: Optional[Span]
    note: str


@dataclass(frozen=True)
class Diagnostic:
    """One finding, carrying everything every emitter needs.

    ``subject`` names what the finding is about (the root pointer or
    allocation site) and doubles as the deduplication key component that
    collapses shadow-variable duplicates (``p`` vs ``p__next``).
    """

    rule_id: str
    severity: str  # "error" | "warning" | "note"
    message: str
    loc: Optional[Loc] = None
    span: Optional[Span] = None
    file: Optional[str] = None
    checker: str = ""
    subject: str = ""
    trace: Tuple[TraceStep, ...] = ()
    #: Precision of the alias facts this finding rests on: ``"fscs"``
    #: normally, or the cascade level a supporting cluster degraded to
    #: (``"fsci"``/``"andersen"``/``"steensgaard"``).  Degraded-precision
    #: findings are still sound may-facts, just coarser — emitters mark
    #: them so consumers can triage accordingly.
    precision: str = "fscs"

    @property
    def line(self) -> Optional[int]:
        return self.span.line if self.span is not None else None

    @property
    def degraded(self) -> bool:
        return self.precision != "fscs"

    def position(self) -> str:
        """``file:line:col`` (best effort) for text output."""
        parts: List[str] = []
        if self.file:
            parts.append(self.file)
        if self.span is not None:
            parts.append(str(self.span))
        elif self.loc is not None:
            parts.append(f"{self.loc.function}:{self.loc.index}")
        return ":".join(parts) if parts else "<unknown>"


def dedup_diagnostics(diags: List[Diagnostic]) -> List[Diagnostic]:
    """Collapse findings that restate each other.

    Two diagnostics merge when they share (rule, function, line,
    subject) — e.g. the shadow-field free mirrored next to the real one,
    or the load the normalizer emits besides a store on the same
    expression.  The highest-severity representative survives.
    """
    best: Dict[tuple, Diagnostic] = {}
    order: List[tuple] = []
    for d in diags:
        key = (d.rule_id,
               d.loc.function if d.loc is not None else None,
               d.span.line if d.span is not None
               else (d.loc.index if d.loc is not None else None),
               d.subject)
        prev = best.get(key)
        if prev is None:
            best[key] = d
            order.append(key)
        elif SEVERITY_ORDER.get(d.severity, 3) < \
                SEVERITY_ORDER.get(prev.severity, 3):
            best[key] = d
    out = [best[k] for k in order]
    out.sort(key=lambda d: (d.file or "", d.span.line if d.span else 0,
                            d.span.column if d.span else 0, d.rule_id))
    return out


def suppress_diagnostics(diags: List[Diagnostic], program: Program
                         ) -> Tuple[List[Diagnostic], int]:
    """Drop findings on ``// repro:ignore`` lines; returns (kept, #dropped).

    ``program.suppressed_lines`` maps line numbers to ``None`` (blanket:
    every rule suppressed) or a frozenset of rule ids (only those rules
    suppressed, from ``repro:ignore[rule-id,...]``).  A legacy plain set
    of line numbers is also accepted and treated as blanket.
    """
    suppressed = program.suppressed_lines
    if not suppressed:
        return list(diags), 0

    def is_suppressed(d: Diagnostic) -> bool:
        if d.span is None or d.span.line not in suppressed:
            return False
        if not isinstance(suppressed, dict):
            return True  # legacy: a bare set of lines means blanket
        rules = suppressed[d.span.line]
        if rules is None:
            return True
        # Accept ids with or without the tool prefix: both
        # ``repro:ignore[repro-null-deref]`` and
        # ``repro:ignore[null-deref]`` silence repro-null-deref.
        return (d.rule_id in rules or
                (d.rule_id.startswith("repro-") and
                 d.rule_id[len("repro-"):] in rules))

    kept = [d for d in diags if not is_suppressed(d)]
    return kept, len(diags) - len(kept)


def render_diagnostics_text(diags: List[Diagnostic],
                            verbose_trace: bool = True) -> str:
    """Compiler-style one-line-per-finding text rendering."""
    lines: List[str] = []
    for d in diags:
        marker = f" [degraded-precision: {d.precision}]" if d.degraded else ""
        lines.append(f"{d.position()}: {d.severity}: {d.message} "
                     f"[{d.rule_id}]{marker}")
        if verbose_trace:
            for step in d.trace:
                pos = (str(step.span) if step.span is not None
                       else f"{step.loc.function}:{step.loc.index}")
                lines.append(f"    note: {step.note} (at {pos})")
    return "\n".join(lines)


def diagnostics_to_dict(diags: List[Diagnostic]) -> List[Dict[str, Any]]:
    """JSON-friendly list of findings (the ``--json`` CLI surface)."""
    out: List[Dict[str, Any]] = []
    for d in diags:
        entry: Dict[str, Any] = {
            "rule": d.rule_id,
            "severity": d.severity,
            "message": d.message,
            "checker": d.checker,
            "subject": d.subject,
        }
        if d.degraded:
            entry["precision"] = d.precision
            entry["degraded"] = True
        if d.file:
            entry["file"] = d.file
        if d.span is not None:
            entry["line"] = d.span.line
            entry["column"] = d.span.column
        if d.loc is not None:
            entry["function"] = d.loc.function
            entry["location"] = [d.loc.function, d.loc.index]
        if d.trace:
            entry["trace"] = [
                {"note": s.note,
                 "function": s.loc.function,
                 "line": s.span.line if s.span is not None else None}
                for s in d.trace]
        out.append(entry)
    return out


def _sarif_location(file: Optional[str], span: Optional[Span],
                    message: Optional[str] = None) -> Dict[str, Any]:
    physical: Dict[str, Any] = {
        "artifactLocation": {"uri": file or "<unknown>"},
    }
    if span is not None:
        region: Dict[str, Any] = {"startLine": span.line}
        if span.column:
            region["startColumn"] = span.column
        physical["region"] = region
    loc: Dict[str, Any] = {"physicalLocation": physical}
    if message:
        loc["message"] = {"text": message}
    return loc


def diagnostics_to_sarif(diags: List[Diagnostic],
                         tool_name: str = "repro",
                         tool_version: str = "0.1.0") -> Dict[str, Any]:
    """A SARIF 2.1.0 log with one run covering all findings.

    Rules are collected from the findings themselves; traces become
    ``codeFlows`` so SARIF viewers can step through the witness.
    """
    rules: Dict[str, Dict[str, Any]] = {}
    results: List[Dict[str, Any]] = []
    for d in diags:
        rules.setdefault(d.rule_id, {
            "id": d.rule_id,
            "name": d.checker or d.rule_id,
            "shortDescription": {"text": d.checker or d.rule_id},
        })
        result: Dict[str, Any] = {
            "ruleId": d.rule_id,
            "level": d.severity if d.severity in ("error", "warning",
                                                  "note") else "warning",
            "message": {"text": d.message},
            "locations": [_sarif_location(d.file, d.span)],
        }
        if d.degraded:
            result["properties"] = {"degraded-precision": d.precision}
        if d.trace:
            flow_locs = [
                {"location": _sarif_location(d.file, s.span, s.note)}
                for s in d.trace]
            flow_locs.append(
                {"location": _sarif_location(d.file, d.span, d.message)})
            result["codeFlows"] = [
                {"threadFlows": [{"locations": flow_locs}]}]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "version": tool_version,
                "informationUri":
                    "https://github.com/example/repro-bootstrap",
                "rules": sorted(rules.values(), key=lambda r: r["id"]),
            }},
            "results": results,
        }],
    }


def percentile(values: List[int], q: float) -> int:
    """Nearest-rank percentile of ``values`` (0 on empty input)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def size_summary(values: List[int]) -> Dict[str, int]:
    """The p50/p95/max shape Table 1 discussions use for cluster and
    partition size distributions."""
    return {
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "max": max(values, default=0),
    }


def cascade_summary(result: BootstrapResult) -> Dict[str, Any]:
    """A JSON-friendly summary of one bootstrapped analysis."""
    cascade = result.cascade
    program = result.program
    sizes = [c.size for c in cascade.clusters]
    partition_sizes = [len(p) for p in cascade.steensgaard.partitions()]
    by_origin = Counter(c.origin for c in cascade.clusters)
    slice_sizes = [c.slice.size for c in cascade.clusters]
    functions_touched = [len(c.slice.functions()) for c in cascade.clusters]
    counts = program.counts()
    return {
        "program": {
            "functions": counts["functions"],
            "locations": counts["locations"],
            "pointers": counts["pointers"],
            "pointer_assignments": counts["pointer_assignments"],
            "alloc_sites": counts["alloc_sites"],
        },
        "timings": {
            "partitioning_seconds": cascade.partition_time,
            "clustering_seconds": cascade.clustering_time,
        },
        "clusters": {
            "count": len(sizes),
            "max_size": max(sizes, default=0),
            "mean_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "by_origin": dict(by_origin),
            "refined_partitions": cascade.refined_partitions,
            "size_histogram": dict(sorted(Counter(sizes).items())),
            # Clusters are sorted largest-first, so this doubles as the
            # per-cluster member-count table of the JSON report.
            "member_counts": sizes,
            "size_summary": size_summary(sizes),
        },
        "partitions": {
            "count": len(partition_sizes),
            "size_summary": size_summary(partition_sizes),
        },
        "slices": {
            "max_statements": max(slice_sizes, default=0),
            "mean_statements": (sum(slice_sizes) / len(slice_sizes))
            if slice_sizes else 0.0,
            "max_functions": max(functions_touched, default=0),
        },
        "analyzed_clusters": result.analyzed_cluster_count,
    }


def render_report(result: BootstrapResult,
                  top: int = 10) -> str:
    """Markdown report: headline numbers + the largest clusters."""
    summary = cascade_summary(result)
    prog = summary["program"]
    cl = summary["clusters"]
    lines: List[str] = []
    lines.append("## Bootstrapped alias analysis report")
    lines.append("")
    lines.append(f"* program: {prog['functions']} functions, "
                 f"{prog['pointers']} pointers, "
                 f"{prog['pointer_assignments']} pointer assignments, "
                 f"{prog['alloc_sites']} allocation sites")
    lines.append(f"* cascade: {cl['count']} clusters "
                 f"(max {cl['max_size']}, mean {cl['mean_size']:.1f}); "
                 f"{cl['refined_partitions']} partitions Andersen-refined; "
                 f"origins {cl['by_origin']}")
    lines.append(f"* timings: partitioning "
                 f"{summary['timings']['partitioning_seconds']:.3f}s, "
                 f"clustering "
                 f"{summary['timings']['clustering_seconds']:.3f}s")
    lines.append(f"* slices: largest St_P has "
                 f"{summary['slices']['max_statements']} statements "
                 f"across ≤ {summary['slices']['max_functions']} functions")
    lines.append("")
    rows = []
    for cluster in result.clusters[:top]:
        members = sorted(str(m) for m in cluster.members)
        preview = ", ".join(members[:5]) + (" ..." if len(members) > 5 else "")
        rows.append([str(cluster.size), cluster.origin,
                     str(cluster.slice.size),
                     str(len(cluster.slice.functions())), preview])
    lines.append(format_table(
        ["size", "origin", "|St_P|", "funcs", "members"], rows,
        title=f"Largest {min(top, len(result.clusters))} clusters"))
    return "\n".join(lines)

"""Human-readable analysis reports.

The cascade produces a lot of structure (partitions, slices, clusters,
summaries, timings); this module renders it as the markdown report the
CLI's ``analyze --report`` emits, and as a JSON-serializable dict for
tooling.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional

from ..bench.metrics import format_table
from ..ir import Program, Var
from .bootstrap import BootstrapResult


def cascade_summary(result: BootstrapResult) -> Dict[str, Any]:
    """A JSON-friendly summary of one bootstrapped analysis."""
    cascade = result.cascade
    program = result.program
    sizes = [c.size for c in cascade.clusters]
    by_origin = Counter(c.origin for c in cascade.clusters)
    slice_sizes = [c.slice.size for c in cascade.clusters]
    functions_touched = [len(c.slice.functions()) for c in cascade.clusters]
    counts = program.counts()
    return {
        "program": {
            "functions": counts["functions"],
            "locations": counts["locations"],
            "pointers": counts["pointers"],
            "pointer_assignments": counts["pointer_assignments"],
            "alloc_sites": counts["alloc_sites"],
        },
        "timings": {
            "partitioning_seconds": cascade.partition_time,
            "clustering_seconds": cascade.clustering_time,
        },
        "clusters": {
            "count": len(sizes),
            "max_size": max(sizes, default=0),
            "mean_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "by_origin": dict(by_origin),
            "refined_partitions": cascade.refined_partitions,
            "size_histogram": dict(sorted(Counter(sizes).items())),
        },
        "slices": {
            "max_statements": max(slice_sizes, default=0),
            "mean_statements": (sum(slice_sizes) / len(slice_sizes))
            if slice_sizes else 0.0,
            "max_functions": max(functions_touched, default=0),
        },
        "analyzed_clusters": result.analyzed_cluster_count,
    }


def render_report(result: BootstrapResult,
                  top: int = 10) -> str:
    """Markdown report: headline numbers + the largest clusters."""
    summary = cascade_summary(result)
    prog = summary["program"]
    cl = summary["clusters"]
    lines: List[str] = []
    lines.append("## Bootstrapped alias analysis report")
    lines.append("")
    lines.append(f"* program: {prog['functions']} functions, "
                 f"{prog['pointers']} pointers, "
                 f"{prog['pointer_assignments']} pointer assignments, "
                 f"{prog['alloc_sites']} allocation sites")
    lines.append(f"* cascade: {cl['count']} clusters "
                 f"(max {cl['max_size']}, mean {cl['mean_size']:.1f}); "
                 f"{cl['refined_partitions']} partitions Andersen-refined; "
                 f"origins {cl['by_origin']}")
    lines.append(f"* timings: partitioning "
                 f"{summary['timings']['partitioning_seconds']:.3f}s, "
                 f"clustering "
                 f"{summary['timings']['clustering_seconds']:.3f}s")
    lines.append(f"* slices: largest St_P has "
                 f"{summary['slices']['max_statements']} statements "
                 f"across ≤ {summary['slices']['max_functions']} functions")
    lines.append("")
    rows = []
    for cluster in result.clusters[:top]:
        members = sorted(str(m) for m in cluster.members)
        preview = ", ".join(members[:5]) + (" ..." if len(members) > 5 else "")
        rows.append([str(cluster.size), cluster.origin,
                     str(cluster.slice.size),
                     str(len(cluster.slice.functions())), preview])
    lines.append(format_table(
        ["size", "origin", "|St_P|", "funcs", "members"], rows,
        title=f"Largest {min(top, len(result.clusters))} clusters"))
    return "\n".join(lines)

"""Fault-tolerant cluster execution with sound graceful degradation.

Kahlon's bootstrapping is a chain of sound over-approximations:
Steensgaard partitions cover Andersen clusters (Theorem 2), clusters
cover the FSCS facts computed within them (Theorem 7), and the sliced
FSCI the FSCS pass consumes over-approximates the FSCS result itself.
That chain is usually presented as a *precision* story — each stage
narrows the next stage's work — but it is equally a *robustness* story:
when the most precise stage fails (a worker crash, a hang, a blown
budget, a corrupted result), any earlier stage's answer for the same
cluster is still sound.  This module turns that observation into an
execution policy:

* :class:`RunPolicy` — per-cluster wall-clock timeout (enforced inside
  the worker via the analysis deadline *and* at the future), bounded
  retries with exponential backoff and deterministic jitter, and a
  max-consecutive-failure circuit breaker that stops retrying when the
  pool itself is sick;
* the **degradation ladder** :func:`degrade_ladder` — FSCS → sliced
  FSCI → Andersen over the cluster's slice → Steensgaard partition:
  each rung re-answers the cluster's points-to query with a coarser,
  cheaper, still-sound analysis, and the outcome is tagged with the
  precision level actually achieved so every downstream consumer
  (reports, diagnostics, the daemon) can say "this fact is real but
  coarse";
* picklable worker entry points (:func:`run_resilient_single`,
  :func:`run_resilient_batch`) that fire injected faults
  (:mod:`repro.core.faults`), honor the in-worker deadline, and convert
  exceptions into *markers* instead of poisoning the whole batch.

Degraded outcomes keep the exact shape of clean ones
(``{"stats", "points_to"}``) plus ``status``/``precision``/``error``/
``attempts`` tags; clean outcomes stay untagged, so the cross-backend
bit-identity the differential suite checks is untouched, and degraded
outcomes are never written to the summary cache (a later healthy run
must recompute at full precision).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.andersen import Andersen
from ..analysis.cutshortcut import CutShortcutTransform
from ..analysis.fsci import FSCI
from ..analysis.steensgaard import Steensgaard
from ..analysis.steensgaard_fs import SteensgaardFS
from ..errors import AnalysisBudgetExceeded, ReproError
from ..ir import CallGraph, Program
from .clusters import Cluster

#: The ladder, most precise first.  ``fscs`` is the clean outcome; a
#: degraded outcome carries one of the other five.
PRECISION_LEVELS = ("fscs", "fsci", "cutshortcut", "andersen",
                    "steensgaard_fs", "steensgaard")

#: Payload keys that describe *how* to execute, not *what* to analyze —
#: excluded from fingerprints so injecting a fault or tuning a timeout
#: never changes a cluster's cache identity.
EXECUTION_KEYS = frozenset({"faults", "fault_fingerprint", "resilience"})

_ERROR_KEY = "__cluster_error__"

#: Stats shape of a degraded outcome: no summaries were built.
_ZERO_STATS = {"summarized_functions": 0, "summary_entries": 0,
               "engine_steps": 0, "fsci_iterations": 0}


def coarsest(levels: Iterable[str]) -> str:
    """The least precise of ``levels`` (ladder order)."""
    worst = 0
    for level in levels:
        worst = max(worst, PRECISION_LEVELS.index(level))
    return PRECISION_LEVELS[worst]


class ClusterExecutionError(ReproError):
    """A cluster's analysis failed and degradation was not allowed."""

    def __init__(self, index: int, message: str) -> None:
        self.index = index
        super().__init__(f"cluster {index} failed: {message}")


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RunPolicy:
    """How hard to try, how long to wait, and whether to degrade.

    ``cluster_timeout`` is the per-cluster wall-clock budget; it becomes
    the analysis deadline inside the worker (catching livelocks the
    worker can observe) *and* bounds ``future.result`` in the parent
    (catching hard hangs it cannot).  ``retries`` counts re-submissions
    after the first attempt.  Backoff between attempts is exponential
    with deterministic jitter — :meth:`delay` hashes the retry key, so
    two runs retry on identical schedules and tests stay reproducible.
    ``max_consecutive_failures`` trips the circuit breaker: once that
    many attempts in a row have failed, remaining failed clusters skip
    straight to degradation instead of hammering a sick pool.
    ``hard_timeout`` is the backstop applied when ``cluster_timeout`` is
    unset, so no future is ever awaited unboundedly.
    """

    cluster_timeout: Optional[float] = None
    retries: int = 1
    backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    max_backoff: float = 2.0
    max_consecutive_failures: int = 8
    degrade: bool = True
    grace: float = 5.0
    hard_timeout: float = 3600.0

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to sleep before retry ``attempt`` (2 = first retry).
        Jitter is derived from ``key`` so it is deterministic per
        cluster but decorrelated across clusters."""
        base = min(self.max_backoff,
                   self.backoff * self.backoff_factor ** max(0, attempt - 2))
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        unit = digest[0] / 255.0
        return base * (1.0 + self.jitter * unit)

    def future_timeout(self, count: int = 1) -> float:
        """Bound on awaiting a future that runs ``count`` clusters.
        Doubled per cluster when a timeout is set: a worker that blows
        its deadline may degrade *in the worker*, which costs up to one
        more deadline's worth of (coarser, cheaper) analysis."""
        if self.cluster_timeout is None:
            return self.hard_timeout
        return 2.0 * self.cluster_timeout * max(1, count) + self.grace

    def payload_config(self) -> Dict[str, Any]:
        """The JSON-safe slice of the policy a worker needs."""
        return {"cluster_timeout": self.cluster_timeout,
                "degrade": self.degrade}


#: The policy applied when none is given: no per-cluster timeout (just
#: the hard backstop), one retry for transient worker failures, *no*
#: degradation — clean runs behave exactly as before, but a crash or
#: hang now surfaces as a structured error instead of blocking forever.
DEFAULT_POLICY = RunPolicy(cluster_timeout=None, retries=1, degrade=False)


class CircuitBreaker:
    """Consecutive-failure counter shared across retry attempts.

    Two deployments share this class.  At *pool* level (the PR-5 retry
    loop) it is a one-way fuse: once ``threshold`` attempts in a row
    have failed, remaining failures skip straight to degradation, and
    the breaker never closes again within the run.  At *shard* level
    (the fleet coordinator keeps one breaker per worker) the breaker
    must also *heal*: pass ``reset_timeout`` and an open breaker turns
    **half-open** that many seconds after its last recorded failure —
    :meth:`allow_probe` then admits exactly one probe at a time, whose
    success closes the breaker (the shard rejoins the ring) and whose
    failure re-opens it for another ``reset_timeout``.
    """

    def __init__(self, threshold: int,
                 reset_timeout: Optional[float] = None) -> None:
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self.trips = 0
        self._consecutive = 0
        self._last_failure = 0.0
        self._probing = False
        self._lock = threading.Lock()

    def record_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive += 1
            self._last_failure = time.monotonic()
            self._probing = False
            if self._consecutive == self.threshold:
                self.trips += 1

    @property
    def is_open(self) -> bool:
        with self._lock:
            return self._consecutive >= self.threshold

    def allow_probe(self) -> bool:
        """Half-open check: may the caller send one probe through an
        open breaker?  True once per ``reset_timeout`` window — the
        probe's ``record_success``/``record_failure`` decides whether
        the breaker closes or re-opens.  Always False while closed (no
        probe needed) or when no ``reset_timeout`` was given (the
        pool-level one-way fuse)."""
        if self.reset_timeout is None:
            return False
        with self._lock:
            if self._consecutive < self.threshold or self._probing:
                return False
            if time.monotonic() - self._last_failure < self.reset_timeout:
                return False
            self._probing = True
            return True

    def state(self) -> str:
        """``closed`` | ``open`` | ``half-open`` (for status reports)."""
        with self._lock:
            if self._consecutive < self.threshold:
                return "closed"
            if self.reset_timeout is not None and (
                    self._probing
                    or time.monotonic() - self._last_failure
                    >= self.reset_timeout):
                return "half-open"
            return "open"


# ----------------------------------------------------------------------
# outcome shape: validation, markers, tags
# ----------------------------------------------------------------------

def validate_outcome(outcome: Any, pointer_names: Iterable[str]) -> bool:
    """Is ``outcome`` a structurally sound cluster outcome?  Checked in
    the parent on everything a worker returns, so a corrupted result is
    indistinguishable from a crash: retried, then degraded."""
    if not isinstance(outcome, dict):
        return False
    pts = outcome.get("points_to")
    if not isinstance(pts, dict) or not isinstance(outcome.get("stats"), dict):
        return False
    for name in pointer_names:
        objs = pts.get(name)
        if not isinstance(objs, list) \
                or not all(isinstance(o, str) for o in objs):
            return False
    return True


def is_degraded(outcome: Any) -> bool:
    return isinstance(outcome, dict) and outcome.get("status") == "degraded"


def error_marker(exc: BaseException, retryable: bool = True
                 ) -> Dict[str, Any]:
    """A picklable stand-in for an exception, so one failing cluster
    does not poison its batch's future."""
    marker: Dict[str, Any] = {
        _ERROR_KEY: f"{type(exc).__name__}: {exc}",
        "retryable": retryable,
    }
    if isinstance(exc, AnalysisBudgetExceeded):
        # Deterministic: retrying cannot help, and when degradation is
        # off the parent must re-raise the original error type.
        marker["retryable"] = False
        marker["budget"] = {"analysis": exc.analysis, "steps": exc.steps}
    return marker


def is_error_marker(outcome: Any) -> bool:
    return isinstance(outcome, dict) and _ERROR_KEY in outcome


def raise_marker(marker: Dict[str, Any], index: int) -> None:
    """Re-raise the failure a marker stands for."""
    budget = marker.get("budget")
    if budget is not None:
        raise AnalysisBudgetExceeded(budget["analysis"], budget["steps"])
    raise ClusterExecutionError(index, marker[_ERROR_KEY])


# ----------------------------------------------------------------------
# the degradation ladder
# ----------------------------------------------------------------------

def _fs_of(program: Program) -> Any:
    """The whole-program field-sensitive Steensgaard result, cached on
    the program (several clusters degrading in one run share it)."""
    cached = getattr(program, "_steensgaard_fs_result", None)
    if cached is None:
        cached = SteensgaardFS(program).run()
        program._steensgaard_fs_result = cached  # type: ignore[attr-defined]
    return cached


def degraded_outcome(program: Program, cluster: Cluster, level: str,
                     steens: Optional[Any] = None,
                     callgraph: Optional[CallGraph] = None,
                     error: str = "", attempts: int = 1,
                     deadline: Optional[float] = None) -> Dict[str, Any]:
    """One rung: the cluster's points-to facts recomputed by the
    coarser analysis named by ``level``.

    Soundness per rung (each ⊇ the clean FSCS facts at the program
    exit):

    * ``fsci`` — the sliced flow-sensitive context-*insensitive* pass
      the FSCS stage already consumes as its own over-approximation,
      projected flow-insensitively (the union of each pointer's facts
      over every visited location).  The exit-state alone would not do:
      base-case-less call cycles (e.g. through a function pointer) let
      the context-insensitive supergraph reach the exit only along
      unrealizable return paths that drop facts the clean backward
      summaries still report;
    * ``cutshortcut`` — Andersen over the cut-shortcut-transformed
      slice: per-site return edges replace the shared return conduits,
      which still covers every realizable return flow (the summaries
      bail to the untransformed edge on anything they cannot prove), so
      the solution covers each location's facts while staying at or
      below the ``andersen`` rung;
    * ``andersen`` — flow-insensitive inclusion constraints over the
      same sliced statements, so its (location-free) solution covers
      every location's facts;
    * ``steensgaard_fs`` — field-sensitive unification over the whole
      program: every partition (hence every per-field pointee set) is a
      subset of the classic rung's below it, and still a sound cover;
    * ``steensgaard`` — unification over the whole program, the coarsest
      cover in the cascade.
    """
    members = sorted(cluster.pointer_members, key=str)
    points_to: Dict[str, List[str]] = {}
    if level == "fsci":
        relevant = cluster.slice.statements
        cg = callgraph or CallGraph(program)
        functions = cg.ancestors_of({loc.function for loc in relevant})
        functions.add(program.entry)
        fsci = FSCI(program, tracked=cluster.slice.vp, relevant=relevant,
                    functions=functions, callgraph=cg,
                    deadline=deadline).run()
        # The clean FSCS summaries conservatively cover slice statements
        # the supergraph never reaches from the entry (uncalled helpers,
        # thread bodies); the fixpoint rightly computes nothing for
        # them.  To stay a superset of the clean answer, widen with
        # Andersen over the slice whenever part of it went unreached —
        # still at or below the next rung, which Andersens the slice
        # regardless.
        extra = None
        if any(not fsci.reached_before(loc) for loc in relevant):
            stmts = [program.stmt_at(loc) for loc in relevant]
            extra = Andersen(program, statements=stmts).run()
        for p in members:
            objs = set(fsci.points_to(p))
            if extra is not None:
                objs |= extra.points_to(p)
            points_to[str(p)] = sorted(str(o) for o in objs)
    elif level == "cutshortcut":
        transform = CutShortcutTransform.of(program)
        stmts = transform.transform_statements(
            (loc, program.stmt_at(loc)) for loc in cluster.slice.statements)
        result = Andersen(program, statements=stmts).run()
        for p in members:
            points_to[str(p)] = sorted(str(o) for o in result.points_to(p))
    elif level == "andersen":
        stmts = [program.stmt_at(loc) for loc in cluster.slice.statements]
        result = Andersen(program, statements=stmts).run()
        for p in members:
            points_to[str(p)] = sorted(str(o) for o in result.points_to(p))
    elif level == "steensgaard_fs":
        result = _fs_of(program)
        for p in members:
            points_to[str(p)] = sorted(str(o) for o in result.points_to(p))
    elif level == "steensgaard":
        result = steens if steens is not None else Steensgaard(program).run()
        for p in members:
            points_to[str(p)] = sorted(str(o) for o in result.points_to(p))
    else:
        raise ValueError(f"not a degraded precision level: {level!r}")
    return {
        "stats": dict(_ZERO_STATS),
        "points_to": points_to,
        "status": "degraded",
        "precision": level,
        "error": error,
        "attempts": attempts,
    }


def degrade_ladder(program: Program, cluster: Cluster,
                   start_level: str = "fsci",
                   steens: Optional[Any] = None,
                   callgraph: Optional[CallGraph] = None,
                   error: str = "", attempts: int = 1,
                   deadline: Optional[float] = None) -> Dict[str, Any]:
    """Walk the ladder from ``start_level`` down, returning the first
    rung that completes.  A rung that itself fails (e.g. the sliced FSCI
    blows the same deadline) falls through to the next; Steensgaard is
    linear-time and effectively cannot fail, so the ladder terminates
    with a sound answer."""
    rungs = PRECISION_LEVELS[PRECISION_LEVELS.index(start_level):]
    for level in rungs[:-1]:
        try:
            return degraded_outcome(program, cluster, level, steens=steens,
                                    callgraph=callgraph, error=error,
                                    attempts=attempts, deadline=deadline)
        except Exception:
            continue
    return degraded_outcome(program, cluster, rungs[-1], steens=steens,
                            callgraph=callgraph, error=error,
                            attempts=attempts, deadline=deadline)


def degrade_payload(payload: Dict[str, Any], error: str = "",
                    attempts: int = 1,
                    cluster_timeout: Optional[float] = None
                    ) -> Dict[str, Any]:
    """Degrade a shipped cluster from its payload alone (worker- or
    parent-side).  The sliced sub-program is observationally identical
    to the full program for this cluster (Theorem 6), so the rungs'
    answers match what in-process degradation would produce."""
    from .shipping import payload_cluster, payload_program
    program = payload_program(payload)
    cluster = payload_cluster(payload)
    deadline = (time.monotonic() + cluster_timeout
                if cluster_timeout is not None else None)
    return degrade_ladder(program, cluster, error=error, attempts=attempts,
                          deadline=deadline)


# ----------------------------------------------------------------------
# worker entry points (module-level, hence picklable)
# ----------------------------------------------------------------------

def _resilient_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Analyze one shipped cluster under its payload's resilience
    config; exceptions become markers, deadline overruns degrade in the
    worker when the policy allows (cheaper than a parent-side round
    trip through a fresh worker)."""
    from . import shipping
    from .faults import corrupt_outcome, fire_faults
    conf = payload.get("resilience") or {}
    try:
        corrupt = fire_faults(payload)
        deadline = None
        timeout = conf.get("cluster_timeout")
        if timeout is not None:
            deadline = time.monotonic() + float(timeout)
        outcome = shipping.analyze_payload(payload, deadline=deadline)
        if corrupt:
            return corrupt_outcome()
        return outcome
    except AnalysisBudgetExceeded as exc:
        if conf.get("degrade"):
            try:
                return degrade_payload(payload, error=str(exc),
                                       cluster_timeout=timeout)
            except Exception as inner:  # degrade in the parent instead
                return error_marker(inner)
        return error_marker(exc)
    except Exception as exc:
        return error_marker(exc)


def run_resilient_single(payload: Dict[str, Any]
                         ) -> Tuple[float, Dict[str, Any]]:
    """Worker entry for retries: one cluster, CPU-timed."""
    t0 = time.process_time()
    outcome = _resilient_payload(payload)
    return (time.process_time() - t0, outcome)


def run_resilient_batch(payloads: Sequence[Dict[str, Any]]
                        ) -> List[Tuple[float, Dict[str, Any]]]:
    """Worker entry for scheduled parts: like
    :func:`~repro.core.shipping.analyze_payload_batch`, but one failing
    cluster yields a marker instead of poisoning its whole part."""
    out: List[Tuple[float, Dict[str, Any]]] = []
    for payload in payloads:
        out.append(run_resilient_single(payload))
    return out

"""The bootstrapping cascade driver.

"Bootstrapping allows one to string together a series of pointer analyses
of increasing accuracy till the subsets are small enough to ensure
scalability of a highly precise alias analysis."  This module is that
string: a configurable pipeline

    Steensgaard partitioning
      -> [optional One-Flow refinement of partitions above a threshold]
      -> Andersen clustering of partitions above the Andersen threshold
      -> per-cluster slices (Algorithm 1)

producing the independent :class:`~.clusters.Cluster` units the FSCS
stage (and the parallel scheduler) consume.  Per-stage wall-clock timings
are recorded because they are half of Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from ..analysis.cutshortcut import (
    DEFAULT_SOURCE_BOUND,
    CutShortcutTransform,
)
from ..analysis.steensgaard import Steensgaard, SteensgaardResult
from ..analysis.steensgaard_fs import DEFAULT_SHARING_BOUND, SteensgaardFS
from ..ir import MemObject, Program, Var
from .clusters import (
    DEFAULT_ANDERSEN_THRESHOLD,
    Cluster,
    andersen_refine,
    oneflow_refine,
)
from .partitions import PartitionStats, Partitioning
from .relevant import RelevantSlice, relevant_statements


@dataclass
class CascadeConfig:
    """Tuning knobs for the cascade.

    ``andersen_threshold`` mirrors the paper: partitions at or below it
    go straight to the precise stage; larger ones are refined first.
    ``use_oneflow`` inserts Das One-Flow between Steensgaard and
    Andersen, as the paper suggests; ``oneflow_threshold`` defaults to
    the Andersen threshold.  ``refine_with_andersen=False`` disables the
    second stage entirely (pure Steensgaard clustering — Table 1's
    columns 7-9 configuration).
    """

    andersen_threshold: int = DEFAULT_ANDERSEN_THRESHOLD
    refine_with_andersen: bool = True
    use_oneflow: bool = False
    oneflow_threshold: Optional[int] = None
    cycle_elimination: bool = True
    #: Solve the Andersen stage with the bitmask kernel backend
    #: (``False`` = frozenset reference backend; identical results).
    use_kernel: bool = True
    #: First-stage unification: ``"steensgaard"`` (classic) or
    #: ``"steensgaard_fs"`` (field-sensitive without oversharing —
    #: strictly finer partitions, same linear cost regime).
    clustering: str = "steensgaard"
    #: Field-slot cap per class for ``steensgaard_fs`` (beyond it the
    #: class collapses to classic single-cell behaviour).
    sharing_bound: int = DEFAULT_SHARING_BOUND
    #: Apply the cut-shortcut transformation to every Andersen-stage
    #: slice — cheap context sensitivity for return-value flow.
    cutshortcut: bool = False
    #: Return-summary size cap for the cut-shortcut stage.
    source_bound: int = DEFAULT_SOURCE_BOUND


@dataclass
class CascadeResult:
    """Clusters plus the provenance and timing data Table 1 reports."""

    program: Program
    steensgaard: SteensgaardResult
    clusters: List[Cluster]
    partition_time: float
    clustering_time: float
    refined_partitions: int

    def stats(self, origin: Optional[str] = None) -> PartitionStats:
        groups = [c.members for c in self.clusters
                  if origin is None or c.origin == origin]
        return PartitionStats.of(groups)

    def max_cluster_size(self) -> int:
        return max((c.size for c in self.clusters), default=0)

    def clusters_containing(self, pointers: Iterable[Var]) -> List[Cluster]:
        """Demand-driven selection: only the clusters that matter for the
        given pointers (e.g. lock pointers for race detection)."""
        wanted = set(pointers)
        return [c for c in self.clusters if c.members & wanted]

    def cluster_of(self, pointer: Var) -> List[Cluster]:
        return self.clusters_containing([pointer])

    def cluster_costs(self) -> List[int]:
        """Per-cluster work estimates in cluster order — the inputs the
        LPT scheduler balances (see :func:`~.parallel.cluster_cost`)."""
        from .parallel import cluster_cost
        return [cluster_cost(c) for c in self.clusters]


def run_cascade(program: Program,
                config: Optional[CascadeConfig] = None,
                steens: Optional[SteensgaardResult] = None) -> CascadeResult:
    """Execute the cascade and return its clusters."""
    config = config or CascadeConfig()
    if config.clustering not in ("steensgaard", "steensgaard_fs"):
        raise ValueError(f"unknown clustering stage: {config.clustering!r}")
    t0 = time.perf_counter()
    if steens is None:
        if config.clustering == "steensgaard_fs":
            steens = SteensgaardFS(
                program, sharing_bound=config.sharing_bound).run()
        else:
            steens = Steensgaard(program).run()
    transform = (CutShortcutTransform.of(program, config.source_bound)
                 if config.cutshortcut else None)
    partitioning = Partitioning(program, steens)
    partitions = partitioning.pointer_partitions()
    partition_time = time.perf_counter() - t0

    clusters: List[Cluster] = []
    refined = 0
    t1 = time.perf_counter()
    for partition in partitions:
        slice_ = relevant_statements(program, steens, partition)
        groups: List[FrozenSet[MemObject]] = [partition]
        origin = "steensgaard"
        if config.use_oneflow:
            of_threshold = (config.oneflow_threshold
                            if config.oneflow_threshold is not None
                            else config.andersen_threshold)
            if len(partition) > of_threshold:
                groups = oneflow_refine(program, steens, partition, slice_)
                origin = "oneflow"
        if config.refine_with_andersen:
            next_groups: List[FrozenSet[MemObject]] = []
            for g in groups:
                if len(g) > config.andersen_threshold:
                    refined += 1
                    g_slice = (slice_ if g == partition else
                               relevant_statements(program, steens, g))
                    next_groups.extend(andersen_refine(
                        program, steens, g, g_slice,
                        cycle_elimination=config.cycle_elimination,
                        use_kernel=config.use_kernel,
                        transform=transform))
                    origin = "andersen"
                else:
                    next_groups.append(g)
            groups = next_groups
        for g in groups:
            g_origin = origin if len(groups) > 1 or g != partition else "steensgaard"
            g_slice = slice_ if g == partition else \
                relevant_statements(program, steens, g)
            clusters.append(Cluster(members=g, slice=g_slice,
                                    origin=g_origin,
                                    parent_size=len(partition),
                                    parent_slice=slice_))
    clustering_time = time.perf_counter() - t1
    clusters.sort(key=lambda c: (-c.size, sorted(map(str, c.members))))
    return CascadeResult(program=program, steensgaard=steens,
                         clusters=clusters,
                         partition_time=partition_time,
                         clustering_time=clustering_time,
                         refined_partitions=refined)

"""Cluster scheduling and (simulated) parallel execution.

Clusters are analyzable independently, so the paper simulates running on
5 machines: divide the total pointer count by 5 to get a target part
size, then sweep the clusters greedily, closing a part whenever the
accumulated pointer count exceeds the target; report the *maximum* part
time as the parallel wall-clock.  :func:`greedy_parts` reproduces that
heuristic verbatim; :class:`ParallelRunner` additionally offers a real
thread pool for users who want actual concurrency.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

from .clusters import Cluster

T = TypeVar("T")


def greedy_parts(clusters: Sequence[Cluster], parts: int = 5
                 ) -> List[List[Cluster]]:
    """The paper's greedy distribution heuristic.

    "First we divide the total number of pointers in the given program by
    5 which gives us a rough estimate size5 of the number of pointers in
    each part. Then we process the clusters one-by-one and as soon as the
    sum of the number of pointers in each cluster exceeds size5, we
    combine all clusters processed so far into a single part at which
    point we re-start the processing."
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    total = sum(c.size for c in clusters)
    target = total / parts if parts else total
    out: List[List[Cluster]] = []
    current: List[Cluster] = []
    acc = 0
    for c in clusters:
        current.append(c)
        acc += c.size
        if acc > target and len(out) < parts - 1:
            out.append(current)
            current = []
            acc = 0
    if current or not out:
        out.append(current)
    return out


@dataclass
class ParallelReport:
    """Timing of a (simulated) parallel run."""

    part_times: List[float]
    cluster_times: Dict[int, float]  # index into the cluster list -> secs
    results: List[object]

    @property
    def max_part_time(self) -> float:
        """The paper's reported number: the slowest simulated machine."""
        return max(self.part_times, default=0.0)

    @property
    def total_time(self) -> float:
        return sum(self.part_times)


class ParallelRunner(Generic[T]):
    """Run one task per cluster, aggregating times per greedy part.

    ``simulate=True`` (the paper's setup) runs everything sequentially
    and *accounts* time per part; ``simulate=False`` uses a thread pool
    (CPython threads share the GIL, so this demonstrates the API rather
    than true speedup).
    """

    def __init__(self, parts: int = 5, simulate: bool = True) -> None:
        self.parts = parts
        self.simulate = simulate

    def run(self, clusters: Sequence[Cluster],
            task: Callable[[Cluster], T]) -> ParallelReport:
        schedule = greedy_parts(clusters, self.parts)
        index_of = {id(c): i for i, c in enumerate(clusters)}
        cluster_times: Dict[int, float] = {}
        results: List[object] = [None] * len(clusters)

        def timed(c: Cluster) -> Tuple[float, T]:
            t0 = time.perf_counter()
            value = task(c)
            return time.perf_counter() - t0, value

        part_times: List[float] = []
        if self.simulate:
            for part in schedule:
                acc = 0.0
                for c in part:
                    elapsed, value = timed(c)
                    idx = index_of[id(c)]
                    cluster_times[idx] = elapsed
                    results[idx] = value
                    acc += elapsed
                part_times.append(acc)
        else:
            with ThreadPoolExecutor(max_workers=self.parts) as pool:
                def run_part(part: List[Cluster]) -> float:
                    acc = 0.0
                    for c in part:
                        elapsed, value = timed(c)
                        idx = index_of[id(c)]
                        cluster_times[idx] = elapsed
                        results[idx] = value
                        acc += elapsed
                    return acc
                part_times = list(pool.map(run_part, schedule))
        return ParallelReport(part_times=part_times,
                              cluster_times=cluster_times,
                              results=results)

"""Cluster scheduling and parallel execution.

Clusters are analyzable independently, so the paper simulates running on
5 machines: divide the total pointer count by 5 to get a target part
size, then sweep the clusters greedily, closing a part whenever the
accumulated pointer count exceeds the target; report the *maximum* part
time as the parallel wall-clock.  :func:`greedy_parts` reproduces that
heuristic verbatim.

This module additionally provides real execution backends behind one
:class:`ParallelRunner` API:

* ``simulate`` — the paper's setup: run sequentially, account time per
  scheduled part;
* ``threads`` — a thread pool (CPython threads share the GIL, so this
  demonstrates the API rather than true speedup);
* ``processes`` — a ``ProcessPoolExecutor``: each part's clusters are
  shipped to a worker as sliced sub-programs
  (:mod:`~repro.core.shipping`) and analyzed there, which is the real
  multi-core execution the paper's Table 1 "5 machines" column
  simulates.

and a second scheduler: :func:`lpt_parts` assigns clusters
longest-processing-time-first by a per-cluster cost estimate
(slice-statement count x cluster size), falling back to the paper's
greedy sweep whenever the sweep happens to balance better, so its
maximum part cost is never worse than the paper's heuristic.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from .clusters import Cluster

T = TypeVar("T")

#: The execution backends ``ParallelRunner`` (and the CLI) accept.
BACKENDS = ("simulate", "threads", "processes")

#: The schedulers mapping clusters to parts.
SCHEDULERS = ("greedy", "lpt")


def cluster_cost(cluster: Cluster) -> int:
    """Cost estimate driving the LPT scheduler: the FSCS work on a
    cluster grows with both its sliced program and its pointer count, so
    ``slice statements x members`` (floored at 1 so empty-slice clusters
    still count as work units)."""
    return max(1, cluster.size * max(1, cluster.slice.size))


# ----------------------------------------------------------------------
# schedulers (index-based; cluster lists are thin wrappers)
# ----------------------------------------------------------------------

def greedy_index_parts(costs: Sequence[float], parts: int) -> List[List[int]]:
    """The paper's greedy sweep over item indices: accumulate in listed
    order, closing a part as soon as its cost exceeds ``total/parts``."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    total = sum(costs)
    target = total / parts
    out: List[List[int]] = []
    current: List[int] = []
    acc = 0.0
    for i, cost in enumerate(costs):
        current.append(i)
        acc += cost
        if acc > target and len(out) < parts - 1:
            out.append(current)
            current = []
            acc = 0.0
    if current or not out:
        out.append(current)
    return out


def lpt_index_parts(costs: Sequence[float], parts: int) -> List[List[int]]:
    """Longest-processing-time-first over item indices, with a greedy
    fallback: items are placed largest-first onto the least-loaded part;
    if the paper's sweep (:func:`greedy_index_parts`) happens to achieve
    a strictly smaller maximum part cost, its schedule is returned
    instead.  The result's max part cost is therefore never worse than
    the greedy heuristic's — a property the test suite checks.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if not costs:
        return [[]]
    loads = [(0.0, k) for k in range(min(parts, len(costs)))]
    heapq.heapify(loads)
    assignment: List[List[int]] = [[] for _ in range(len(loads))]
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    for i in order:
        load, k = heapq.heappop(loads)
        assignment[k].append(i)
        heapq.heappush(loads, (load + costs[i], k))
    lpt = [part for part in assignment if part]

    def max_cost(schedule: List[List[int]]) -> float:
        return max((sum(costs[i] for i in part) for part in schedule),
                   default=0.0)

    greedy = greedy_index_parts(costs, parts)
    if max_cost(greedy) < max_cost(lpt):
        return greedy
    return lpt


def greedy_parts(clusters: Sequence[Cluster], parts: int = 5
                 ) -> List[List[Cluster]]:
    """The paper's greedy distribution heuristic.

    "First we divide the total number of pointers in the given program by
    5 which gives us a rough estimate size5 of the number of pointers in
    each part. Then we process the clusters one-by-one and as soon as the
    sum of the number of pointers in each cluster exceeds size5, we
    combine all clusters processed so far into a single part at which
    point we re-start the processing."
    """
    schedule = greedy_index_parts([c.size for c in clusters], parts)
    return [[clusters[i] for i in part] for part in schedule]


def lpt_parts(clusters: Sequence[Cluster], parts: int = 5,
              cost: Callable[[Cluster], float] = cluster_cost
              ) -> List[List[Cluster]]:
    """LPT schedule over clusters using ``cost`` (default
    :func:`cluster_cost`); never worse than :func:`greedy_parts` on its
    own cost measure (see :func:`lpt_index_parts`)."""
    schedule = lpt_index_parts([cost(c) for c in clusters], parts)
    return [[clusters[i] for i in part] for part in schedule]


def schedule_indices(clusters: Sequence[Cluster], parts: int,
                     scheduler: str = "greedy") -> List[List[int]]:
    """Cluster indices per part under the chosen scheduler.  Index-based
    so duplicate (equal or even identical) clusters in the input keep
    distinct schedule slots."""
    if scheduler == "greedy":
        return greedy_index_parts([c.size for c in clusters], parts)
    if scheduler == "lpt":
        return lpt_index_parts([cluster_cost(c) for c in clusters], parts)
    raise ValueError(f"unknown scheduler {scheduler!r} "
                     f"(have: {', '.join(SCHEDULERS)})")


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

@dataclass
class ParallelReport:
    """Timing and results of one (possibly parallel) cluster run.

    ``results`` and ``cluster_times`` are keyed by the cluster's *index
    in the input sequence* — a stable key that survives duplicate
    clusters and pickling, unlike object identity.
    """

    part_times: List[float]
    cluster_times: Dict[int, float]  # index into the cluster list -> secs
    results: List[object]
    backend: str = "simulate"
    scheduler: str = "greedy"
    schedule: List[List[int]] = field(default_factory=list)
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Payload fingerprints per cluster (input order), when the run built
    #: payloads (processes backend or any cache) — the invalidation hook
    #: the query daemon diffs across reloads.
    fingerprints: Optional[List[str]] = None
    #: Analysis attempts per cluster index; only clusters the resilience
    #: layer touched more than once (or failed) appear with values > 1.
    attempts: Dict[int, int] = field(default_factory=dict)

    @property
    def max_part_time(self) -> float:
        """The paper's reported number: the slowest simulated machine."""
        return max(self.part_times, default=0.0)

    @property
    def total_time(self) -> float:
        return sum(self.part_times)

    # -- resilience accounting (derived from outcome tags, so cached /
    # -- merged results need no extra bookkeeping) ----------------------
    @property
    def degraded(self) -> Dict[int, str]:
        """Cluster index -> achieved precision level, for every cluster
        the degradation ladder handled (empty on clean runs)."""
        out: Dict[int, str] = {}
        for i, outcome in enumerate(self.results):
            if isinstance(outcome, dict) and outcome.get("status") == "degraded":
                out[i] = str(outcome.get("precision", "steensgaard"))
        return out

    def cluster_status(self, index: int) -> str:
        """``"ok"`` or ``"degraded"`` for one cluster."""
        return "degraded" if index in self.degraded else "ok"

    def cluster_precision(self, index: int) -> str:
        """The precision level of one cluster's outcome (``"fscs"``
        unless it was degraded)."""
        return self.degraded.get(index, "fscs")

    @property
    def statuses(self) -> List[str]:
        return [self.cluster_status(i) for i in range(len(self.results))]

    @property
    def precisions(self) -> List[str]:
        return [self.cluster_precision(i) for i in range(len(self.results))]


class ParallelRunner(Generic[T]):
    """Run one task per cluster, aggregating times per scheduled part.

    ``backend`` selects execution: ``"simulate"`` (the paper's setup —
    sequential, time *accounted* per part), ``"threads"`` (thread pool;
    GIL-bound), or ``"processes"`` (real multiprocess execution; requires
    per-cluster payloads, see :meth:`run_payloads`).  The legacy
    ``simulate`` flag maps to the first two.  ``jobs`` caps worker count
    (defaults to ``parts``).
    """

    def __init__(self, parts: int = 5, simulate: bool = True,
                 backend: Optional[str] = None,
                 scheduler: str = "greedy",
                 jobs: Optional[int] = None) -> None:
        if backend is None:
            backend = "simulate" if simulate else "threads"
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r} "
                             f"(have: {', '.join(BACKENDS)})")
        self.parts = parts
        self.backend = backend
        self.scheduler = scheduler
        self.jobs = jobs if jobs is not None else parts
        self.simulate = backend == "simulate"

    # ------------------------------------------------------------------
    def run(self, clusters: Sequence[Cluster],
            task: Callable[[Cluster], T]) -> ParallelReport:
        """Execute ``task`` per cluster under the ``simulate`` or
        ``threads`` backend (in-process callables cannot cross a process
        boundary; use :meth:`run_payloads` for ``processes``)."""
        if self.backend == "processes":
            raise ValueError(
                "the processes backend ships serialized payloads, not "
                "callables; use ParallelRunner.run_payloads or "
                "BootstrapResult.analyze_all(backend='processes')")
        t0 = time.perf_counter()
        schedule = schedule_indices(clusters, self.parts, self.scheduler)
        cluster_times: Dict[int, float] = {}
        results: List[object] = [None] * len(clusters)

        def run_part(part: List[int]) -> float:
            acc = 0.0
            for idx in part:
                t1 = time.perf_counter()
                value = task(clusters[idx])
                elapsed = time.perf_counter() - t1
                cluster_times[idx] = elapsed
                results[idx] = value
                acc += elapsed
            return acc

        if self.backend == "simulate":
            part_times = [run_part(part) for part in schedule]
        else:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                part_times = list(pool.map(run_part, schedule))
        return ParallelReport(
            part_times=part_times, cluster_times=cluster_times,
            results=results, backend=self.backend,
            scheduler=self.scheduler, schedule=schedule,
            wall_time=time.perf_counter() - t0)

    # ------------------------------------------------------------------
    @staticmethod
    def _retire_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
        """Shut a pool down without waiting; ``kill`` additionally
        terminates its worker processes (a hung worker never finishes on
        its own, and ``shutdown`` alone would leave it running)."""
        if kill:
            procs = getattr(pool, "_processes", None) or {}
            for proc in list(procs.values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    def run_payloads(self, payloads: Sequence[Dict[str, Any]],
                     clusters: Sequence[Cluster],
                     policy: "Optional[object]" = None) -> ParallelReport:
        """Execute the ``processes`` backend: each scheduled part's
        payloads go to one ``ProcessPoolExecutor`` worker, which rebuilds
        the sliced sub-programs and returns per-cluster outcomes.

        Execution is fault-isolated per cluster under ``policy`` (a
        :class:`~repro.core.resilience.RunPolicy`; a conservative default
        applies when omitted): every future is awaited with a deadline, a
        crashed or hung pool is replaced and only the *failed* clusters
        are re-submitted (bounded retries with backoff, gated by the
        circuit breaker), and clusters that still fail either degrade
        down the bootstrap cascade (``policy.degrade``) or raise a
        structured :class:`~repro.core.resilience.ClusterExecutionError`.
        Nothing blocks forever, and one poison cluster no longer takes
        the run down with it.
        """
        from .resilience import (
            DEFAULT_POLICY,
            CircuitBreaker,
            ClusterExecutionError,
            RunPolicy,
            degrade_payload,
            is_degraded,
            is_error_marker,
            raise_marker,
            run_resilient_batch,
            run_resilient_single,
            validate_outcome,
        )
        pol: RunPolicy = policy if policy is not None else DEFAULT_POLICY  # type: ignore[assignment]
        t0 = time.perf_counter()
        schedule = schedule_indices(clusters, self.parts, self.scheduler)
        cluster_times: Dict[int, float] = {}
        results: List[object] = [None] * len(clusters)
        part_times: List[float] = [0.0] * len(schedule)
        attempts: Dict[int, int] = {}
        failed: Dict[int, str] = {}
        workers = max(1, min(self.jobs, len(schedule)))
        # The resilience config rides inside the payload (it must cross
        # the process boundary); fingerprints ignore it, and they were
        # computed before this call anyway.
        for payload in payloads:
            payload["resilience"] = pol.payload_config()

        def member_names(idx: int) -> List[str]:
            return [str(p) for p in clusters[idx].pointer_members]

        def accept(idx: int, elapsed: float, outcome: object) -> bool:
            """Record a worker response; False means the cluster failed."""
            if is_error_marker(outcome):
                marker: Dict[str, Any] = outcome  # type: ignore[assignment]
                if not marker.get("retryable", True) and not pol.degrade:
                    raise_marker(marker, idx)
                failed[idx] = marker["__cluster_error__"]
                return False
            if not (is_degraded(outcome)
                    or validate_outcome(outcome, member_names(idx))):
                failed[idx] = "invalid outcome (corrupted result)"
                return False
            failed.pop(idx, None)
            cluster_times[idx] = elapsed
            results[idx] = outcome
            return True

        pool = ProcessPoolExecutor(max_workers=workers)
        pool_sick = False
        try:
            # Phase 1: one batched future per scheduled part, each
            # awaited with a deadline so a hang fails the part instead
            # of the whole run.
            futures = [
                pool.submit(run_resilient_batch,
                            [payloads[i] for i in part])
                for part in schedule
            ]
            for part_no, (part, future) in enumerate(zip(schedule, futures)):
                for idx in part:
                    attempts[idx] = 1
                try:
                    timed = future.result(
                        timeout=pol.future_timeout(len(part)))
                except FutureTimeoutError:
                    pool_sick = True
                    for idx in part:
                        failed.setdefault(
                            idx, f"part {part_no} timed out after "
                                 f"{pol.future_timeout(len(part)):.1f}s")
                    continue
                except BrokenProcessPool:
                    pool_sick = True
                    for idx in part:
                        failed.setdefault(idx, "worker process crashed "
                                               "(BrokenProcessPool)")
                    continue
                acc = 0.0
                for idx, (elapsed, outcome) in zip(part, timed):
                    if accept(idx, elapsed, outcome):
                        acc += elapsed
                part_times[part_no] = acc

            # Phase 2: per-cluster retries against a healthy pool.  A
            # part-level failure (one hang/crash fails the whole batch)
            # is re-tried cluster-by-cluster, so innocent neighbors of a
            # poison cluster recover here on their first retry.
            if failed and pol.retries > 0:
                if pool_sick:
                    self._retire_pool(pool, kill=True)
                    pool = ProcessPoolExecutor(max_workers=workers)
                    pool_sick = False
                breaker = CircuitBreaker(pol.max_consecutive_failures)
                for idx in sorted(failed):
                    for attempt in range(2, pol.retries + 2):
                        if breaker.is_open:
                            break
                        time.sleep(pol.delay(attempt, key=str(idx)))
                        attempts[idx] = attempt
                        try:
                            single = pool.submit(run_resilient_single,
                                                 payloads[idx])
                            elapsed, outcome = single.result(
                                timeout=pol.future_timeout(1))
                        except (FutureTimeoutError, BrokenProcessPool) as exc:
                            failed[idx] = f"retry {attempt}: " \
                                          f"{type(exc).__name__}"
                            breaker.record_failure()
                            self._retire_pool(pool, kill=True)
                            pool = ProcessPoolExecutor(max_workers=workers)
                            continue
                        if accept(idx, elapsed, outcome):
                            breaker.record_success()
                            break
                        breaker.record_failure()
                        if is_error_marker(outcome) \
                                and not outcome.get("retryable", True):
                            break  # deterministic failure; stop early

            # Phase 3: whatever still failed degrades down the cascade
            # (parent-side, from the shipped payload) — or, with
            # degradation disabled, surfaces as a structured error.
            if failed:
                if not pol.degrade:
                    first = sorted(failed)[0]
                    raise ClusterExecutionError(first, failed[first])
                for idx in sorted(failed):
                    t1 = time.perf_counter()
                    outcome = degrade_payload(
                        payloads[idx], error=failed[idx],
                        attempts=attempts.get(idx, 1),
                        cluster_timeout=pol.cluster_timeout)
                    cluster_times[idx] = time.perf_counter() - t1
                    results[idx] = outcome
                failed.clear()
        finally:
            self._retire_pool(pool, kill=pool_sick)
        return ParallelReport(
            part_times=part_times, cluster_times=cluster_times,
            results=results, backend="processes",
            scheduler=self.scheduler, schedule=schedule,
            wall_time=time.perf_counter() - t0,
            attempts=attempts)

"""Cluster scheduling and parallel execution.

Clusters are analyzable independently, so the paper simulates running on
5 machines: divide the total pointer count by 5 to get a target part
size, then sweep the clusters greedily, closing a part whenever the
accumulated pointer count exceeds the target; report the *maximum* part
time as the parallel wall-clock.  :func:`greedy_parts` reproduces that
heuristic verbatim.

This module additionally provides real execution backends behind one
:class:`ParallelRunner` API:

* ``simulate`` — the paper's setup: run sequentially, account time per
  scheduled part;
* ``threads`` — a thread pool (CPython threads share the GIL, so this
  demonstrates the API rather than true speedup);
* ``processes`` — a ``ProcessPoolExecutor``: each part's clusters are
  shipped to a worker as sliced sub-programs
  (:mod:`~repro.core.shipping`) and analyzed there, which is the real
  multi-core execution the paper's Table 1 "5 machines" column
  simulates.

and a second scheduler: :func:`lpt_parts` assigns clusters
longest-processing-time-first by a per-cluster cost estimate
(slice-statement count x cluster size), falling back to the paper's
greedy sweep whenever the sweep happens to balance better, so its
maximum part cost is never worse than the paper's heuristic.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from .clusters import Cluster

T = TypeVar("T")

#: The execution backends ``ParallelRunner`` (and the CLI) accept.
BACKENDS = ("simulate", "threads", "processes")

#: The schedulers mapping clusters to parts.
SCHEDULERS = ("greedy", "lpt")


def cluster_cost(cluster: Cluster) -> int:
    """Cost estimate driving the LPT scheduler: the FSCS work on a
    cluster grows with both its sliced program and its pointer count, so
    ``slice statements x members`` (floored at 1 so empty-slice clusters
    still count as work units)."""
    return max(1, cluster.size * max(1, cluster.slice.size))


# ----------------------------------------------------------------------
# schedulers (index-based; cluster lists are thin wrappers)
# ----------------------------------------------------------------------

def greedy_index_parts(costs: Sequence[float], parts: int) -> List[List[int]]:
    """The paper's greedy sweep over item indices: accumulate in listed
    order, closing a part as soon as its cost exceeds ``total/parts``."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    total = sum(costs)
    target = total / parts
    out: List[List[int]] = []
    current: List[int] = []
    acc = 0.0
    for i, cost in enumerate(costs):
        current.append(i)
        acc += cost
        if acc > target and len(out) < parts - 1:
            out.append(current)
            current = []
            acc = 0.0
    if current or not out:
        out.append(current)
    return out


def lpt_index_parts(costs: Sequence[float], parts: int) -> List[List[int]]:
    """Longest-processing-time-first over item indices, with a greedy
    fallback: items are placed largest-first onto the least-loaded part;
    if the paper's sweep (:func:`greedy_index_parts`) happens to achieve
    a strictly smaller maximum part cost, its schedule is returned
    instead.  The result's max part cost is therefore never worse than
    the greedy heuristic's — a property the test suite checks.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if not costs:
        return [[]]
    loads = [(0.0, k) for k in range(min(parts, len(costs)))]
    heapq.heapify(loads)
    assignment: List[List[int]] = [[] for _ in range(len(loads))]
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    for i in order:
        load, k = heapq.heappop(loads)
        assignment[k].append(i)
        heapq.heappush(loads, (load + costs[i], k))
    lpt = [part for part in assignment if part]

    def max_cost(schedule: List[List[int]]) -> float:
        return max((sum(costs[i] for i in part) for part in schedule),
                   default=0.0)

    greedy = greedy_index_parts(costs, parts)
    if max_cost(greedy) < max_cost(lpt):
        return greedy
    return lpt


def greedy_parts(clusters: Sequence[Cluster], parts: int = 5
                 ) -> List[List[Cluster]]:
    """The paper's greedy distribution heuristic.

    "First we divide the total number of pointers in the given program by
    5 which gives us a rough estimate size5 of the number of pointers in
    each part. Then we process the clusters one-by-one and as soon as the
    sum of the number of pointers in each cluster exceeds size5, we
    combine all clusters processed so far into a single part at which
    point we re-start the processing."
    """
    schedule = greedy_index_parts([c.size for c in clusters], parts)
    return [[clusters[i] for i in part] for part in schedule]


def lpt_parts(clusters: Sequence[Cluster], parts: int = 5,
              cost: Callable[[Cluster], float] = cluster_cost
              ) -> List[List[Cluster]]:
    """LPT schedule over clusters using ``cost`` (default
    :func:`cluster_cost`); never worse than :func:`greedy_parts` on its
    own cost measure (see :func:`lpt_index_parts`)."""
    schedule = lpt_index_parts([cost(c) for c in clusters], parts)
    return [[clusters[i] for i in part] for part in schedule]


def schedule_indices(clusters: Sequence[Cluster], parts: int,
                     scheduler: str = "greedy") -> List[List[int]]:
    """Cluster indices per part under the chosen scheduler.  Index-based
    so duplicate (equal or even identical) clusters in the input keep
    distinct schedule slots."""
    if scheduler == "greedy":
        return greedy_index_parts([c.size for c in clusters], parts)
    if scheduler == "lpt":
        return lpt_index_parts([cluster_cost(c) for c in clusters], parts)
    raise ValueError(f"unknown scheduler {scheduler!r} "
                     f"(have: {', '.join(SCHEDULERS)})")


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

@dataclass
class ParallelReport:
    """Timing and results of one (possibly parallel) cluster run.

    ``results`` and ``cluster_times`` are keyed by the cluster's *index
    in the input sequence* — a stable key that survives duplicate
    clusters and pickling, unlike object identity.
    """

    part_times: List[float]
    cluster_times: Dict[int, float]  # index into the cluster list -> secs
    results: List[object]
    backend: str = "simulate"
    scheduler: str = "greedy"
    schedule: List[List[int]] = field(default_factory=list)
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Payload fingerprints per cluster (input order), when the run built
    #: payloads (processes backend or any cache) — the invalidation hook
    #: the query daemon diffs across reloads.
    fingerprints: Optional[List[str]] = None

    @property
    def max_part_time(self) -> float:
        """The paper's reported number: the slowest simulated machine."""
        return max(self.part_times, default=0.0)

    @property
    def total_time(self) -> float:
        return sum(self.part_times)


class ParallelRunner(Generic[T]):
    """Run one task per cluster, aggregating times per scheduled part.

    ``backend`` selects execution: ``"simulate"`` (the paper's setup —
    sequential, time *accounted* per part), ``"threads"`` (thread pool;
    GIL-bound), or ``"processes"`` (real multiprocess execution; requires
    per-cluster payloads, see :meth:`run_payloads`).  The legacy
    ``simulate`` flag maps to the first two.  ``jobs`` caps worker count
    (defaults to ``parts``).
    """

    def __init__(self, parts: int = 5, simulate: bool = True,
                 backend: Optional[str] = None,
                 scheduler: str = "greedy",
                 jobs: Optional[int] = None) -> None:
        if backend is None:
            backend = "simulate" if simulate else "threads"
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r} "
                             f"(have: {', '.join(BACKENDS)})")
        self.parts = parts
        self.backend = backend
        self.scheduler = scheduler
        self.jobs = jobs if jobs is not None else parts
        self.simulate = backend == "simulate"

    # ------------------------------------------------------------------
    def run(self, clusters: Sequence[Cluster],
            task: Callable[[Cluster], T]) -> ParallelReport:
        """Execute ``task`` per cluster under the ``simulate`` or
        ``threads`` backend (in-process callables cannot cross a process
        boundary; use :meth:`run_payloads` for ``processes``)."""
        if self.backend == "processes":
            raise ValueError(
                "the processes backend ships serialized payloads, not "
                "callables; use ParallelRunner.run_payloads or "
                "BootstrapResult.analyze_all(backend='processes')")
        t0 = time.perf_counter()
        schedule = schedule_indices(clusters, self.parts, self.scheduler)
        cluster_times: Dict[int, float] = {}
        results: List[object] = [None] * len(clusters)

        def run_part(part: List[int]) -> float:
            acc = 0.0
            for idx in part:
                t1 = time.perf_counter()
                value = task(clusters[idx])
                elapsed = time.perf_counter() - t1
                cluster_times[idx] = elapsed
                results[idx] = value
                acc += elapsed
            return acc

        if self.backend == "simulate":
            part_times = [run_part(part) for part in schedule]
        else:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                part_times = list(pool.map(run_part, schedule))
        return ParallelReport(
            part_times=part_times, cluster_times=cluster_times,
            results=results, backend=self.backend,
            scheduler=self.scheduler, schedule=schedule,
            wall_time=time.perf_counter() - t0)

    # ------------------------------------------------------------------
    def run_payloads(self, payloads: Sequence[Dict[str, Any]],
                     clusters: Sequence[Cluster]) -> ParallelReport:
        """Execute the ``processes`` backend: each scheduled part's
        payloads go to one ``ProcessPoolExecutor`` worker, which rebuilds
        the sliced sub-programs and returns per-cluster outcomes."""
        from .shipping import analyze_payload_batch
        t0 = time.perf_counter()
        schedule = schedule_indices(clusters, self.parts, self.scheduler)
        cluster_times: Dict[int, float] = {}
        results: List[object] = [None] * len(clusters)
        part_times: List[float] = [0.0] * len(schedule)
        workers = max(1, min(self.jobs, len(schedule)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(analyze_payload_batch,
                            [payloads[i] for i in part])
                for part in schedule
            ]
            for part_no, (part, future) in enumerate(zip(schedule, futures)):
                timed = future.result()
                acc = 0.0
                for idx, (elapsed, outcome) in zip(part, timed):
                    cluster_times[idx] = elapsed
                    results[idx] = outcome
                    acc += elapsed
                part_times[part_no] = acc
        return ParallelReport(
            part_times=part_times, cluster_times=cluster_times,
            results=results, backend="processes",
            scheduler=self.scheduler, schedule=schedule,
            wall_time=time.perf_counter() - t0)

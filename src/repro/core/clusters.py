"""Andersen clustering — stage two of the cascade.

A Steensgaard partition whose cardinality exceeds the *Andersen
threshold* (60 in the paper's benchmark suite) is refined by running
Andersen's analysis **on the partition's relevant-statement slice only**
(that is the bootstrapping step: the cheaper analysis has already shrunk
the problem the expensive one sees).  Each Andersen points-to set then
becomes a cluster; together they form a disjunctive alias cover of the
partition (Theorem 7), possibly overlapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set

from ..analysis.andersen import Andersen, AndersenResult
from ..analysis.cutshortcut import CutShortcutTransform
from ..analysis.oneflow import OneFlow
from ..analysis.steensgaard import SteensgaardResult
from ..ir import Loc, MemObject, Program, Var
from .relevant import RelevantSlice, relevant_statements

#: The paper's empirically determined default threshold.
DEFAULT_ANDERSEN_THRESHOLD = 60


@dataclass(frozen=True)
class Cluster:
    """One unit of independent FSCS work.

    ``origin`` records which cascade stage produced it ("steensgaard",
    "oneflow" or "andersen"); ``parent_size`` is the size of the
    Steensgaard partition it came from (Table 1 reports both).
    """

    members: FrozenSet[MemObject]
    slice: RelevantSlice
    origin: str
    parent_size: int
    #: The slice of the Steensgaard partition this cluster refines; FSCI
    #: may be shared between siblings through it (a sound superset).
    parent_slice: Optional[RelevantSlice] = None

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def pointer_members(self) -> FrozenSet[Var]:
        return frozenset(m for m in self.members if isinstance(m, Var))

    def __len__(self) -> int:
        return len(self.members)


def andersen_refine(program: Program, steens: SteensgaardResult,
                    partition: FrozenSet[MemObject],
                    slice_: Optional[RelevantSlice] = None,
                    cycle_elimination: bool = True,
                    use_kernel: bool = True,
                    transform: Optional["CutShortcutTransform"] = None
                    ) -> List[FrozenSet[MemObject]]:
    """Split ``partition`` into Andersen clusters using only its slice.

    Overlap is expected (Andersen points-to sets are not equivalence
    classes); the union of the returned clusters covers the partition.
    ``transform`` applies the cut-shortcut rewrite to the slice before
    solving, so per-site return flow stops gluing otherwise-unrelated
    pointers into one cluster; the transformed solution is still sound
    (⊇ every concrete flow), so the cover property is unchanged.
    """
    if slice_ is None:
        slice_ = relevant_statements(program, steens, partition)
    if transform is not None:
        stmts = transform.transform_statements(
            (loc, program.stmt_at(loc)) for loc in slice_.statements)
    else:
        stmts = [program.stmt_at(loc) for loc in slice_.statements]
    result = Andersen(program, statements=stmts,
                      cycle_elimination=cycle_elimination,
                      use_kernel=use_kernel).run()
    return _clusters_over(result.points_to_obj, partition)


def oneflow_refine(program: Program, steens: SteensgaardResult,
                   partition: FrozenSet[MemObject],
                   slice_: Optional[RelevantSlice] = None
                   ) -> List[FrozenSet[MemObject]]:
    """Optional middle cascade stage: refine with Das One-Flow instead of
    (or before) Andersen."""
    if slice_ is None:
        slice_ = relevant_statements(program, steens, partition)
    stmts = [program.stmt_at(loc) for loc in slice_.statements]
    result = OneFlow(program, statements=stmts).run()
    return _clusters_over(result.points_to, partition)


def _clusters_over(points_to, partition: FrozenSet[MemObject]
                   ) -> List[FrozenSet[MemObject]]:
    by_obj = {}
    covered: Set[MemObject] = set()
    for p in partition:
        for obj in points_to(p):
            by_obj.setdefault(obj, set()).add(p)
            covered.add(p)
    clusters = {frozenset(c) for c in by_obj.values()}
    for p in partition - covered:
        clusters.add(frozenset({p}))
    return sorted(clusters, key=lambda s: (-len(s), sorted(map(str, s))))

"""On-disk per-cluster FSCS summary cache.

Khedker et al.'s lazy pointer analysis motivates not recomputing what a
previous run already established.  Clusters make that easy: a cluster's
analysis outcome is a pure function of its sliced sub-program, its
member/slice sets and the analysis knobs — all of which
:func:`~repro.core.shipping.payload_fingerprint` hashes into one content
key.  Repeated ``repro analyze`` runs therefore skip every cluster whose
fingerprint is already on disk, and editing a source file invalidates
only the clusters whose sliced sub-programs actually changed.

Directory layout (documented in README "Parallel execution"):

    <cache-dir>/
        <aa>/<fingerprint>.json    # one outcome per cluster fingerprint
        quarantine/<fingerprint>.json  # corrupted entries, moved aside

where ``<aa>`` is the fingerprint's first two hex digits (keeps any
single directory small).  Entries are self-contained JSON outcome dicts
(``{"stats": ..., "points_to": ...}``); there is no index to corrupt,
and writes go through a temp file + ``os.replace`` so concurrent runs
sharing a cache directory never observe torn entries.  Invalidation is
purely key-based: nothing is ever rewritten in place, and
:meth:`SummaryCache.prune` deletes entries untouched for a given number
of days.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, Optional


#: Subdirectory corrupted entries are moved to (never read back).
QUARANTINE_DIR = "quarantine"


class SummaryCache:
    """Content-addressed store of per-cluster analysis outcomes."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def _quarantine(self, path: str) -> None:
        """Move a corrupted entry aside (never delete user data, never
        re-read it): a truncated write or disk error must read as a
        cache miss, not crash the run — and must not read as a miss
        *again and again* by being retried every lookup."""
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
        except OSError:
            pass  # quarantine is best-effort; the miss already happened
        self.corrupt += 1

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached outcome for ``key``, or ``None``; counts the
        hit/miss either way.  A corrupted or truncated entry is a miss:
        the bad file is quarantined (see :meth:`stats`) and the caller
        recomputes."""
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                outcome = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return None
        if not isinstance(outcome, dict):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def put(self, key: str, outcome: Dict[str, Any]) -> None:
        """Store ``outcome`` under ``key`` atomically and durably: the
        temp file is fsynced *before* the rename, so a crash — even
        SIGKILL or power loss mid-write — leaves either no entry or a
        complete one, never a truncated file for quarantine to catch
        (quarantine stays as defense-in-depth against bit rot)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(outcome, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def _walk(self):
        """Entry directories only — the quarantine corner is not part of
        the cache contents."""
        for dirpath, subdirs, files in os.walk(self.root):
            if dirpath == self.root:
                subdirs[:] = [d for d in subdirs if d != QUARANTINE_DIR]
            yield dirpath, subdirs, files

    def __len__(self) -> int:
        n = 0
        for _dir, _subdirs, files in self._walk():
            n += sum(1 for f in files if f.endswith(".json"))
        return n

    def quarantined(self) -> int:
        """How many corrupted entries have been moved aside (all time,
        not just this session)."""
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            return sum(1 for f in os.listdir(qdir) if f.endswith(".json"))
        except OSError:
            return 0

    def stats(self) -> Dict[str, Any]:
        """Entry count, disk footprint and entry-age range — the
        ``repro cache stats`` peek."""
        now = time.time()
        entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for dirpath, _subdirs, files in self._walk():
            for name in files:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                entries += 1
                total_bytes += st.st_size
                age = now - st.st_mtime
                oldest = age if oldest is None else max(oldest, age)
                newest = age if newest is None else min(newest, age)
        return {
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "oldest_age_days": (oldest or 0.0) / 86400.0,
            "newest_age_days": (newest or 0.0) / 86400.0,
            "quarantined": self.quarantined(),
            "corrupt_this_session": self.corrupt,
        }

    def prune(self, max_age_days: float) -> int:
        """Delete entries written more than ``max_age_days`` ago; returns
        the number removed.  Entries are immutable, so mtime is write
        time; pruning bounds disk use and never affects correctness."""
        cutoff = time.time() - max_age_days * 86400.0
        removed = 0
        for dirpath, _subdirs, files in self._walk():
            for name in files:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.path.getmtime(path) < cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    continue
        return removed

"""Shipping clusters to worker processes.

The paper's scalability story rests on clusters being independent work
units: "the clusters can be analyzed independently of each other ...
making the analysis embarrassingly parallel".  A CPython thread pool
cannot demonstrate that (the GIL serializes the workers), so the real
backend sends each cluster to a ``ProcessPoolExecutor`` worker.  What
travels is not the whole program but the cluster's *sliced sub-program*
(the paper's reduced program ``Prog_P``), rebuilt on the worker side via
the versioned IR serializer:

* :func:`cluster_subprogram` — restrict the program to the functions
  from which the cluster's slice is reachable, replacing irrelevant
  pointer assignments with skips.  Control flow, calls, returns and
  assumes are preserved, so FSCI/FSCS on the sub-program compute exactly
  what they compute on the full program restricted to the slice
  (Theorem 6).
* :func:`build_payload` — one JSON-safe dict per cluster: sub-program,
  cluster, analysis knobs.
* :func:`payload_fingerprint` — content hash of a payload; the summary
  cache key.  Source spans are dropped from sub-programs, so edits that
  do not change a cluster's sliced sub-program (touching other
  functions, or only line numbers) keep its fingerprint — and its cached
  summary — valid.
* :func:`analyze_payload` / :func:`analyze_payload_batch` — the worker
  entry points (module-level, hence picklable).  A worker-local FSCI
  cache keyed by the parent slice's fingerprint reproduces the
  sibling-cluster sharing :meth:`BootstrapResult.analysis_for` does in
  process.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.fscs import ClusterFSCS
from ..ir import CallGraph, CFG, Loc, Program, Var
from ..ir.program import Function
from ..ir.serialize import (
    SymbolTable,
    cluster_from_dict,
    cluster_from_wire,
    cluster_to_dict,
    cluster_to_wire,
    decode_symbols,
    program_from_dict,
    program_from_wire,
    program_to_dict,
    program_to_wire,
    slice_to_wire,
)
from ..ir.statements import AddrOf, CallStmt, ReturnStmt, Skip, Statement
from .clusters import Cluster
from .relevant import RelevantSlice

#: Bump when the payload layout or the analysis semantics behind cached
#: outcomes change; part of every fingerprint, so stale cache entries
#: simply stop matching.  Version 2 interns every symbol into a
#: per-payload table (``syms``) shipped once, with statements and
#: slices referring to symbols by index; ``base_syms`` marks the table
#: prefix shared by sibling clusters of one partition.  Version 1 (every
#: symbol inline, repeated) is still readable and still buildable via
#: ``build_payload(compact=False)`` — it is the regression baseline the
#: payload-size test compares against.
PAYLOAD_VERSION = 2

_SLICED = Skip("sliced")


def _base_slice(cluster: Cluster) -> RelevantSlice:
    """The slice the shared FSCI pass runs on: the parent partition's
    when present (siblings share it), else the cluster's own."""
    return cluster.parent_slice if cluster.parent_slice is not None \
        else cluster.slice


def _stmt_vars(stmt: Statement) -> Set[Var]:
    out: Set[Var] = set(stmt.used_vars())
    defined = stmt.defined_var()
    if defined is not None:
        out.add(defined)
    if isinstance(stmt, AddrOf) and isinstance(stmt.target, Var):
        out.add(stmt.target)
    return out


def cluster_subprogram(program: Program, cluster: Cluster,
                       callgraph: Optional[CallGraph] = None) -> Program:
    """The cluster's shippable reduced program ``Prog_P``.

    Kept functions are exactly the ones the cluster's FSCI would visit on
    the full program: ancestors of the slice's functions, plus the entry.
    Within them, CFG shape is preserved node-for-node (``Loc`` indices in
    the slice stay valid), calls/returns/assumes survive, and pointer
    assignments outside the slice become skips — which is precisely how
    the sliced FSCI treats them on the full program, so the sub-program
    is observationally identical for this cluster.  Source spans are
    intentionally dropped: they do not affect analysis and would make
    fingerprints churn on unrelated edits.

    Functions a kept function calls but that are not themselves kept are
    retained as empty *stubs*.  A non-kept callee is no ancestor of a
    slice function, so nothing in its call subtree is relevant — it acts
    as the identity for the cluster.  The stub preserves exactly that:
    the summary engine sees a transparent callee (an identity disjunct at
    every multi-target call site — dropping it loses points-to facts),
    and the supergraph keeps the call's flow-through path.
    """
    cg = callgraph or CallGraph(program)
    base = _base_slice(cluster)
    keep = cg.ancestors_of(base.functions())
    keep.add(program.entry)
    relevant = base.statements
    used: Set[Var] = set(base.vp) | set(cluster.members)

    functions: Dict[str, Function] = {}
    stub_names: Set[str] = set()
    for name in sorted(keep):
        src = program.cfg_of(name)
        cfg = CFG(name)
        for idx in src.nodes():
            stmt = src.stmt(idx)
            if stmt.is_pointer_assign and Loc(name, idx) not in relevant:
                stmt = _SLICED
            else:
                used |= _stmt_vars(stmt)
            if isinstance(stmt, CallStmt):
                stub_names.update(t for t in stmt.targets
                                  if t not in keep and t in program.functions)
            if idx == 0:
                cfg.set_stmt(0, stmt)
            else:
                cfg.add_node(stmt)
        for idx in src.nodes():
            for succ in src.successors(idx):
                cfg.add_edge(idx, succ)
        cfg.entry = src.entry
        cfg.exit = src.exit
        fn = program.functions[name]
        functions[name] = Function(name=name, params=list(fn.params),
                                   locals=set(fn.locals), cfg=cfg)
    for name in sorted(stub_names):
        cfg = CFG(name)
        cfg.exit = cfg.add_node(ReturnStmt())
        cfg.add_edge(cfg.entry, cfg.exit)
        fn = program.functions[name]
        functions[name] = Function(name=name, params=list(fn.params),
                                   locals=set(), cfg=cfg)
    globals_ = {g for g in program.globals if g in used}
    return Program(functions, entry=program.entry, globals_=globals_)


def build_payload(program: Program, cluster: Cluster,
                  callgraph: Optional[CallGraph] = None,
                  max_cond_atoms: int = 4,
                  budget: Optional[int] = None,
                  subprogram_cache: Optional[Dict[int, Any]] = None,
                  compact: bool = True,
                  ) -> Dict[str, Any]:
    """Everything a worker needs to analyze one cluster, JSON-safe.

    ``compact`` (default) emits the version-2 interned format: one
    symbol table per payload, everything else referring to symbols by
    index.  ``compact=False`` emits the legacy version-1 format with
    inline symbol dicts — kept for size-regression comparison.

    Sibling clusters of one partition share a base slice and hence a
    sub-program; pass one ``subprogram_cache`` dict across a batch of
    ``build_payload`` calls to serialize each sub-program (and, for the
    compact format, its symbol-table prefix) only once (the cache is
    keyed by base-slice identity, so it is only valid while the cluster
    objects it served are alive).
    """
    base = _base_slice(cluster)
    config = {"max_cond_atoms": max_cond_atoms, "budget": budget}
    if not compact:
        sub_dict = None
        if subprogram_cache is not None:
            sub_dict = subprogram_cache.get(("v1", id(base)))
        if sub_dict is None:
            sub = cluster_subprogram(program, cluster, callgraph)
            sub_dict = program_to_dict(sub)
            if subprogram_cache is not None:
                subprogram_cache[("v1", id(base))] = sub_dict
        return {
            "version": 1,
            "subprogram": sub_dict,
            "cluster": cluster_to_dict(cluster),
            "config": config,
        }

    entry = None
    if subprogram_cache is not None:
        entry = subprogram_cache.get(("v2", id(base)))
    if entry is None:
        sub = cluster_subprogram(program, cluster, callgraph)
        table = SymbolTable()
        # Intern order matters for sibling sharing: sub-program symbols
        # first, then the base slice's — every sibling then ships an
        # identical ``syms[:base_syms]`` prefix, which is what the
        # worker's shared-FSCI fingerprint hashes.
        sub_wire = program_to_wire(sub, table)
        base_wire = slice_to_wire(base, table)
        entry = (sub_wire, base_wire, table, len(table), len(table.fnames))
        if subprogram_cache is not None:
            subprogram_cache[("v2", id(base))] = entry
    sub_wire, base_wire, base_table, base_syms, base_fnames = entry
    table = base_table.clone()
    if cluster.parent_slice is not None:
        cluster_wire = cluster_to_wire(cluster, table, parent_wire=base_wire)
    else:
        # base is the cluster's own slice; reuse its encoding.
        cluster_wire = cluster_to_wire(cluster, table)
        cluster_wire["slice"] = base_wire
    return {
        "version": PAYLOAD_VERSION,
        "syms": table.syms,
        "fnames": table.fnames,
        "base_syms": base_syms,
        "base_fnames": base_fnames,
        "subprogram": sub_wire,
        "cluster": cluster_wire,
        "config": config,
    }


def _digest(data: Any) -> str:
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cluster_fingerprints(program: Program, clusters: Sequence[Cluster],
                         callgraph: Optional[CallGraph] = None,
                         max_cond_atoms: int = 4,
                         budget: Optional[int] = None) -> List[str]:
    """Payload fingerprints for a batch of clusters, input order.

    Exactly the fingerprints ``analyze_all`` computes for the same
    knobs (one shared ``subprogram_cache`` across the batch, so sibling
    clusters serialize their sub-program once) — which makes them valid
    shard keys: the fleet coordinator routes by them without paying for
    any cluster's actual FSCS analysis, and the keys agree with the
    summary-cache identity every worker caches under.
    """
    cg = callgraph or CallGraph(program)
    cache: Dict[Any, Any] = {}
    return [payload_fingerprint(build_payload(
        program, cluster, cg, max_cond_atoms=max_cond_atoms,
        budget=budget, subprogram_cache=cache))
        for cluster in clusters]


def payload_fingerprint(payload: Dict[str, Any]) -> str:
    """Content hash of a payload — the summary-cache key.

    Two clusters (across runs, across edited sources) share a
    fingerprint iff their sliced sub-programs, members, slices and
    analysis knobs are identical, which is exactly when their cached
    outcomes are interchangeable.  Execution decorations (injected
    faults, resilience config) describe *how* a run executes, not what
    it computes, so they are excluded — a faulted or timeout-bounded
    run keeps the cache identity of a clean one.
    """
    from .resilience import EXECUTION_KEYS
    if any(k in payload for k in EXECUTION_KEYS):
        payload = {k: v for k, v in payload.items()
                   if k not in EXECUTION_KEYS}
    return _digest(payload)


def _fsci_fingerprint(payload: Dict[str, Any]) -> str:
    """Key for the worker-local shared-FSCI cache: sibling clusters of
    one partition ship identical sub-programs and parent slices.

    For the interned format the shared symbol prefix (``base_syms``
    entries) joins the hash — the same wire indices mean different
    symbols under different tables, so the prefix is what gives the
    sub-program and parent slice their meaning.
    """
    cluster = payload["cluster"]
    parent = cluster.get("parent_slice", cluster["slice"])
    if payload.get("version", 1) >= 2:
        return _digest({
            "syms": payload["syms"][:payload["base_syms"]],
            "fnames": payload["fnames"][:payload["base_fnames"]],
            "subprogram": payload["subprogram"],
            "parent": parent,
        })
    return _digest({"subprogram": payload["subprogram"], "parent": parent})


def payload_program(payload: Dict[str, Any]) -> Program:
    """Decode a payload's sub-program, whichever format it ships."""
    if payload.get("version", 1) >= 2:
        fnames = payload["fnames"]
        return program_from_wire(payload["subprogram"],
                                 decode_symbols(payload["syms"], fnames),
                                 fnames)
    return program_from_dict(payload["subprogram"])


def payload_cluster(payload: Dict[str, Any]) -> Cluster:
    """Decode a payload's cluster, whichever format it ships."""
    if payload.get("version", 1) >= 2:
        fnames = payload["fnames"]
        return cluster_from_wire(payload["cluster"],
                                 decode_symbols(payload["syms"], fnames),
                                 fnames)
    return cluster_from_dict(payload["cluster"])


def cluster_outcome(analysis: ClusterFSCS) -> Dict[str, Any]:
    """The canonical, picklable result of analyzing one cluster.

    ``stats`` is the summary-construction accounting
    (:meth:`ClusterFSCS.analyze`); ``points_to`` maps every cluster
    pointer to its sorted points-to set at the end of the program entry —
    the observable the differential suite compares bit-for-bit across
    backends.
    """
    stats = analysis.analyze()
    program = analysis.program
    exit_loc = Loc(program.entry, program.cfg_of(program.entry).exit)
    points_to: Dict[str, List[str]] = {}
    for p in sorted(analysis.cluster, key=str):
        objs = analysis.points_to(p, exit_loc)
        points_to[str(p)] = sorted(str(o) for o in objs)
    return {"stats": stats, "points_to": points_to}


#: Worker-local cache: parent-slice fingerprint -> (program, callgraph,
#: FSCI result).  Mirrors the sibling sharing of the in-process path and
#: lives for the worker's lifetime.
_FSCI_CACHE: Dict[str, Tuple[Program, CallGraph, object]] = {}


def analyze_payload(payload: Dict[str, Any],
                    deadline: Optional[float] = None) -> Dict[str, Any]:
    """Worker entry point: rebuild the sub-program and analyze the
    cluster, mirroring :meth:`BootstrapResult.analysis_for` exactly.
    ``deadline`` (absolute ``time.monotonic``) is the resilience layer's
    in-worker timeout; overruns raise
    :class:`~repro.errors.AnalysisBudgetExceeded`."""
    key = _fsci_fingerprint(payload)
    cached = _FSCI_CACHE.get(key)
    cluster = payload_cluster(payload)
    if cached is None:
        program = payload_program(payload)
        callgraph = CallGraph(program)
        parent = _base_slice(cluster)
        probe = ClusterFSCS(program, cluster=(), tracked=parent.vp,
                            relevant=parent.statements, callgraph=callgraph,
                            deadline=deadline)
        cached = (program, callgraph, probe.fsci)
        _FSCI_CACHE[key] = cached
    program, callgraph, fsci = cached
    config = payload["config"]
    analysis = ClusterFSCS(
        program,
        cluster=cluster.pointer_members,
        tracked=cluster.slice.vp,
        relevant=cluster.slice.statements,
        callgraph=callgraph,
        fsci=fsci,
        max_cond_atoms=config["max_cond_atoms"],
        budget=config["budget"],
        deadline=deadline,
    )
    return cluster_outcome(analysis)


def analyze_payload_batch(payloads: List[Dict[str, Any]]
                          ) -> List[Tuple[float, Dict[str, Any]]]:
    """Run one scheduled part's clusters in a worker, timing each; the
    per-part sum is the 'machine time' the report aggregates.  CPU time,
    not wall: concurrent workers sharing cores would otherwise bill each
    other's time slices to their own clusters."""
    out: List[Tuple[float, Dict[str, Any]]] = []
    for payload in payloads:
        t0 = time.process_time()
        outcome = analyze_payload(payload)
        out.append((time.process_time() - t0, outcome))
    return out

"""Demand-driven query helpers.

The paper's flexibility pitch: "based on the application, we may not be
interested in accurate aliases for all pointers in the program but only a
small subset. ... for lockset computation used in data race detection, we
need to compute must-aliases only for lock pointers.  Thus we need to
consider only clusters having at least one lock pointer."

These helpers select exactly those clusters and report how much of the
program was skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, List, Optional, Sequence, Set

from ..ir import Loc, MemObject, Program, Var
from .bootstrap import BootstrapResult
from .clusters import Cluster


def resolve_pointer(program: Program, name: str) -> Var:
    """Resolve ``name`` or ``func::name`` to one of ``program``'s
    pointers.

    Bare names match globals directly; a bare name that is only declared
    locally resolves iff exactly one function declares it.  Raises
    :class:`LookupError` (with a human-readable message) on unknown or
    ambiguous names — the CLI and the query daemon share this resolution
    so their answers stay comparable.
    """
    if "::" in name:
        func, base = name.split("::", 1)
        var = Var(base, func)
    else:
        var = Var(name)
        if var not in program.pointers:
            candidates = [p for p in program.pointers if p.name == name]
            if len(candidates) == 1:
                return candidates[0]
            if candidates:
                raise LookupError(
                    f"ambiguous name {name!r}: "
                    + ", ".join(sorted(c.qualified for c in candidates)))
    if var not in program.pointers:
        raise LookupError(f"unknown pointer {name!r}")
    return var


@dataclass(frozen=True)
class DemandSelection:
    """The clusters a demand-driven query actually needs."""

    selected: List[Cluster]
    total_clusters: int
    selected_pointers: int
    total_pointers: int

    @property
    def cluster_fraction(self) -> float:
        if self.total_clusters == 0:
            return 0.0
        return len(self.selected) / self.total_clusters

    @property
    def pointer_fraction(self) -> float:
        if self.total_pointers == 0:
            return 0.0
        return self.selected_pointers / self.total_pointers


def select_clusters(result: BootstrapResult,
                    interesting: Iterable[Var],
                    pure: bool = False) -> DemandSelection:
    """Clusters containing at least one interesting pointer.

    With ``pure=True`` keep only clusters made up *solely* of interesting
    pointers — the paper notes this suffices for lock pointers, "since a
    lock pointer can alias only to another lock pointer".
    """
    wanted = set(interesting)
    selected: List[Cluster] = []
    for c in result.clusters:
        inter = c.members & wanted
        if not inter:
            continue
        if pure and not (c.pointer_members <= wanted):
            continue
        selected.append(c)
    all_clusters = result.clusters
    return DemandSelection(
        selected=selected,
        total_clusters=len(all_clusters),
        selected_pointers=len({m for c in selected for m in c.pointer_members}),
        total_pointers=len(result.program.pointers),
    )


def demand_alias_sets(result: BootstrapResult, pointers: Sequence[Var],
                      loc: Loc, context=None) -> dict:
    """Alias sets for the given pointers, analyzing only their clusters."""
    out = {}
    for p in pointers:
        out[p] = result.alias_set(p, loc, context)
    return out

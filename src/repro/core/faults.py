"""Deterministic fault injection for the cluster execution path.

The resilience layer (:mod:`repro.core.resilience`) promises that a
cluster whose analysis crashes, hangs or returns garbage degrades to a
sound coarser outcome instead of failing the run.  That promise is only
testable if faults can be produced *on demand and deterministically*, so
this module injects them:

* a :class:`FaultSpec` names a fault kind and selects clusters by
  payload fingerprint (a prefix), by schedule index (``#3``) or
  unconditionally (``*``);
* :func:`attach_faults` stamps matching payloads with a JSON-safe
  ``"faults"`` entry — the flag travels inside the payload, so it
  crosses the process boundary to the worker with no side channel;
* :func:`fire_faults` executes the stamped faults at the start of a
  cluster's analysis, in a worker (real ``os._exit`` crashes, real
  sleeps) or in process (both map to raised exceptions, since a hard
  crash would take the test runner down with it).

Fault kinds
-----------

``crash``
    The worker process dies immediately (``os._exit``); in process, a
    ``RuntimeError`` is raised instead.
``hang``
    The worker sleeps for ``duration`` seconds — long enough to trip any
    realistic per-cluster timeout, bounded so an abandoned worker still
    exits on its own; in process, a ``RuntimeError`` is raised.
``corrupt``
    The analysis runs normally but its outcome is replaced with garbage
    that fails :func:`repro.core.resilience.validate_outcome`.
``flaky-once``
    Fails (``RuntimeError``) the first time each fingerprint is seen and
    succeeds afterwards — the retry path's happy case.  Cross-process
    attempt memory is a marker file under ``token_dir``, so the fault
    stays deterministic across pool replacements.

The ``"faults"`` payload entry is ignored by
:func:`~repro.core.shipping.payload_fingerprint`, so injecting a fault
never changes a cluster's cache identity.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: The supported fault kinds.
FAULT_KINDS = ("crash", "hang", "corrupt", "flaky-once")

#: Exit status of a worker killed by a ``crash`` fault (distinctive in
#: process listings; the parent only ever observes ``BrokenProcessPool``).
CRASH_EXIT_CODE = 113


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what goes wrong, and for which clusters.

    ``match`` selects clusters: ``"*"`` matches every cluster, ``"#N"``
    matches the cluster at index ``N`` of the payload list, anything
    else matches fingerprints by prefix.  ``duration`` only matters for
    ``hang``; ``token_dir`` only for ``flaky-once`` (defaults to the
    system temp dir).
    """

    kind: str
    match: str = "*"
    duration: float = 30.0
    token_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(have: {', '.join(FAULT_KINDS)})")

    def matches(self, fingerprint: str, index: int) -> bool:
        if self.match == "*":
            return True
        if self.match.startswith("#"):
            try:
                return int(self.match[1:]) == index
            except ValueError:
                return False
        return fingerprint.startswith(self.match)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "match": self.match,
                               "duration": self.duration}
        if self.token_dir is not None:
            out["token_dir"] = self.token_dir
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(kind=data["kind"], match=data.get("match", "*"),
                   duration=float(data.get("duration", 30.0)),
                   token_dir=data.get("token_dir"))


def parse_fault_arg(text: str) -> FaultSpec:
    """``KIND[:SELECTOR[:DURATION]]`` from the CLI, e.g. ``crash:#3`` or
    ``hang:a1b2:5``."""
    parts = text.split(":")
    kind = parts[0]
    match = parts[1] if len(parts) > 1 and parts[1] else "*"
    duration = 30.0
    if len(parts) > 2 and parts[2]:
        try:
            duration = float(parts[2])
        except ValueError:
            raise ValueError(f"bad fault duration in {text!r}")
    if len(parts) > 3:
        raise ValueError(f"bad fault spec {text!r} "
                         "(KIND[:SELECTOR[:DURATION]])")
    return FaultSpec(kind=kind, match=match, duration=duration)


def attach_faults(payloads: Sequence[Dict[str, Any]],
                  fingerprints: Sequence[str],
                  specs: Iterable[FaultSpec]) -> List[int]:
    """Stamp each matching payload with its faults; returns the indices
    of the payloads that were stamped.

    Stamping happens *after* fingerprints are computed, and the
    fingerprint function ignores the ``"faults"`` key anyway, so the
    cache identity of a faulted cluster never changes.
    """
    stamped: List[int] = []
    specs = list(specs)
    for i, (payload, fp) in enumerate(zip(payloads, fingerprints)):
        matched = [s.to_dict() for s in specs if s.matches(fp, i)]
        if matched:
            payload["faults"] = matched
            payload["fault_fingerprint"] = fp
            stamped.append(i)
    return stamped


def _flaky_token(spec: Dict[str, Any], fingerprint: str) -> str:
    import tempfile
    root = spec.get("token_dir") or tempfile.gettempdir()
    return os.path.join(root, f"repro-flaky-{fingerprint[:32]}.token")


def fire_faults(payload: Dict[str, Any], in_process: bool = False) -> bool:
    """Execute the faults stamped on ``payload`` (no-op when none).

    Returns ``True`` when the cluster's outcome should be corrupted
    after the analysis runs (the ``corrupt`` kind); raises, sleeps or
    kills the process for the other kinds.  ``in_process`` softens
    ``crash`` and ``hang`` into exceptions so in-process backends can
    exercise the same recovery path without killing the host.
    """
    corrupt = False
    fingerprint = payload.get("fault_fingerprint", "")
    for spec in payload.get("faults", ()):
        kind = spec.get("kind")
        if kind == "corrupt":
            corrupt = True
        elif kind == "crash":
            if in_process:
                raise RuntimeError("injected fault: crash")
            os._exit(CRASH_EXIT_CODE)
        elif kind == "hang":
            if in_process:
                raise RuntimeError("injected fault: hang")
            deadline = time.monotonic() + float(spec.get("duration", 30.0))
            while time.monotonic() < deadline:
                time.sleep(0.05)
            raise RuntimeError("injected fault: hang (slept out)")
        elif kind == "flaky-once":
            token = _flaky_token(spec, fingerprint)
            if not os.path.exists(token):
                try:
                    with open(token, "x"):
                        pass
                except OSError:
                    pass  # lost the race: someone else failed first
                else:
                    raise RuntimeError("injected fault: flaky-once")
    return corrupt


def corrupt_outcome() -> Dict[str, Any]:
    """The garbage a ``corrupt`` fault returns in place of a real
    outcome — shaped wrongly on purpose so validation rejects it."""
    return {"points_to": "0xdeadbeef", "stats": None,
            "corrupted": True}


# ----------------------------------------------------------------------
# connection-level faults (the chaos harness's network layer)
# ----------------------------------------------------------------------

#: The supported network fault kinds, injected by :class:`ChaosProxy`
#: between the coordinator and a worker:
#:
#: ``delay``
#:     every chunk waits ``duration`` seconds before forwarding — a
#:     congested or GC-pausing link (what hedging exists to beat);
#: ``blackhole``
#:     bytes are swallowed in both directions while the fault is set —
#:     a partition: the connection looks alive but nothing flows, so
#:     only a timeout can detect it;
#: ``drop``
#:     the response direction forwards ``after_bytes`` bytes and then
#:     both sides are torn down — a worker dying mid-response;
#: ``garble``
#:     response bytes are deterministically scrambled (newlines kept,
#:     so frames still terminate) — corruption on the wire that must be
#:     *detected*, never forwarded to a client as an answer.
NET_FAULT_KINDS = ("delay", "blackhole", "drop", "garble")


@dataclass(frozen=True)
class NetFault:
    """One connection-level fault for :class:`ChaosProxy`."""

    kind: str
    duration: float = 0.1    # delay per chunk (``delay`` only)
    after_bytes: int = 0     # response bytes let through (``drop``)

    def __post_init__(self) -> None:
        if self.kind not in NET_FAULT_KINDS:
            raise ValueError(f"unknown net fault kind {self.kind!r} "
                             f"(have: {', '.join(NET_FAULT_KINDS)})")


def garble_bytes(data: bytes) -> bytes:
    """Deterministically scramble ``data`` while keeping newlines, so a
    line-framed reader still terminates the frame and the corruption is
    observed as a parse failure rather than a hang."""
    return bytes(b if b == 0x0A else 0x7F for b in data)


class ChaosProxy:
    """A socket-level fault injector between two protocol peers.

    The proxy listens on an ephemeral localhost port and forwards every
    connection to the upstream address, consulting the *currently set*
    fault once per chunk — so a deterministic schedule (the chaos
    harness's) can switch faults on and off mid-connection and the
    change takes effect immediately, no reconnect needed.  With no
    fault set the proxy is a transparent byte pump.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 host: str = "127.0.0.1") -> None:
        import socket
        import threading
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self._fault: Optional[NetFault] = None
        self._closed = False
        self._lock = threading.Lock()
        self._conns: List[Any] = []
        self.stats: Dict[str, int] = {
            "connections": 0, "delayed_chunks": 0, "dropped_conns": 0,
            "garbled_chunks": 0, "blackholed_chunks": 0}
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------
    def set_fault(self, fault: Optional[NetFault]) -> None:
        """Install ``fault`` for all current and future traffic
        (``None`` heals the link)."""
        self._fault = fault

    def clear_fault(self) -> None:
        self.set_fault(None)

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        import socket
        import threading
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port),
                    timeout=10.0)
                upstream.settimeout(None)
            except OSError:
                client.close()
                continue
            with self._lock:
                self.stats["connections"] += 1
                self._conns += [client, upstream]
            pair = [client, upstream]
            threading.Thread(target=self._pump,
                             args=(client, upstream, "up", pair),
                             daemon=True).start()
            threading.Thread(target=self._pump,
                             args=(upstream, client, "down", pair),
                             daemon=True).start()

    def _pump(self, src: Any, dst: Any, direction: str,
              pair: List[Any]) -> None:
        forwarded = 0
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    return
                fault = self._fault
                if fault is not None:
                    if fault.kind == "blackhole":
                        # Swallow silently; the link looks alive.
                        with self._lock:
                            self.stats["blackholed_chunks"] += 1
                        continue
                    if fault.kind == "delay":
                        with self._lock:
                            self.stats["delayed_chunks"] += 1
                        time.sleep(fault.duration)
                    elif direction == "down":
                        if fault.kind == "drop":
                            allowed = max(0,
                                          fault.after_bytes - forwarded)
                            if allowed:
                                dst.sendall(data[:allowed])
                            with self._lock:
                                self.stats["dropped_conns"] += 1
                            return  # finally tears both sockets down
                        if fault.kind == "garble":
                            with self._lock:
                                self.stats["garbled_chunks"] += 1
                            data = garble_bytes(data)
                dst.sendall(data)
                forwarded += len(data)
        except OSError:
            return
        finally:
            for sock in pair:
                # shutdown() before close(): the peer must see FIN even
                # while the opposite pump thread is still blocked in
                # recv() on the same socket object.
                try:
                    sock.shutdown(2)  # SHUT_RDWR
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = self._conns, []
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass

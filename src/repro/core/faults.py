"""Deterministic fault injection for the cluster execution path.

The resilience layer (:mod:`repro.core.resilience`) promises that a
cluster whose analysis crashes, hangs or returns garbage degrades to a
sound coarser outcome instead of failing the run.  That promise is only
testable if faults can be produced *on demand and deterministically*, so
this module injects them:

* a :class:`FaultSpec` names a fault kind and selects clusters by
  payload fingerprint (a prefix), by schedule index (``#3``) or
  unconditionally (``*``);
* :func:`attach_faults` stamps matching payloads with a JSON-safe
  ``"faults"`` entry — the flag travels inside the payload, so it
  crosses the process boundary to the worker with no side channel;
* :func:`fire_faults` executes the stamped faults at the start of a
  cluster's analysis, in a worker (real ``os._exit`` crashes, real
  sleeps) or in process (both map to raised exceptions, since a hard
  crash would take the test runner down with it).

Fault kinds
-----------

``crash``
    The worker process dies immediately (``os._exit``); in process, a
    ``RuntimeError`` is raised instead.
``hang``
    The worker sleeps for ``duration`` seconds — long enough to trip any
    realistic per-cluster timeout, bounded so an abandoned worker still
    exits on its own; in process, a ``RuntimeError`` is raised.
``corrupt``
    The analysis runs normally but its outcome is replaced with garbage
    that fails :func:`repro.core.resilience.validate_outcome`.
``flaky-once``
    Fails (``RuntimeError``) the first time each fingerprint is seen and
    succeeds afterwards — the retry path's happy case.  Cross-process
    attempt memory is a marker file under ``token_dir``, so the fault
    stays deterministic across pool replacements.

The ``"faults"`` payload entry is ignored by
:func:`~repro.core.shipping.payload_fingerprint`, so injecting a fault
never changes a cluster's cache identity.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: The supported fault kinds.
FAULT_KINDS = ("crash", "hang", "corrupt", "flaky-once")

#: Exit status of a worker killed by a ``crash`` fault (distinctive in
#: process listings; the parent only ever observes ``BrokenProcessPool``).
CRASH_EXIT_CODE = 113


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what goes wrong, and for which clusters.

    ``match`` selects clusters: ``"*"`` matches every cluster, ``"#N"``
    matches the cluster at index ``N`` of the payload list, anything
    else matches fingerprints by prefix.  ``duration`` only matters for
    ``hang``; ``token_dir`` only for ``flaky-once`` (defaults to the
    system temp dir).
    """

    kind: str
    match: str = "*"
    duration: float = 30.0
    token_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(have: {', '.join(FAULT_KINDS)})")

    def matches(self, fingerprint: str, index: int) -> bool:
        if self.match == "*":
            return True
        if self.match.startswith("#"):
            try:
                return int(self.match[1:]) == index
            except ValueError:
                return False
        return fingerprint.startswith(self.match)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "match": self.match,
                               "duration": self.duration}
        if self.token_dir is not None:
            out["token_dir"] = self.token_dir
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(kind=data["kind"], match=data.get("match", "*"),
                   duration=float(data.get("duration", 30.0)),
                   token_dir=data.get("token_dir"))


def parse_fault_arg(text: str) -> FaultSpec:
    """``KIND[:SELECTOR[:DURATION]]`` from the CLI, e.g. ``crash:#3`` or
    ``hang:a1b2:5``."""
    parts = text.split(":")
    kind = parts[0]
    match = parts[1] if len(parts) > 1 and parts[1] else "*"
    duration = 30.0
    if len(parts) > 2 and parts[2]:
        try:
            duration = float(parts[2])
        except ValueError:
            raise ValueError(f"bad fault duration in {text!r}")
    if len(parts) > 3:
        raise ValueError(f"bad fault spec {text!r} "
                         "(KIND[:SELECTOR[:DURATION]])")
    return FaultSpec(kind=kind, match=match, duration=duration)


def attach_faults(payloads: Sequence[Dict[str, Any]],
                  fingerprints: Sequence[str],
                  specs: Iterable[FaultSpec]) -> List[int]:
    """Stamp each matching payload with its faults; returns the indices
    of the payloads that were stamped.

    Stamping happens *after* fingerprints are computed, and the
    fingerprint function ignores the ``"faults"`` key anyway, so the
    cache identity of a faulted cluster never changes.
    """
    stamped: List[int] = []
    specs = list(specs)
    for i, (payload, fp) in enumerate(zip(payloads, fingerprints)):
        matched = [s.to_dict() for s in specs if s.matches(fp, i)]
        if matched:
            payload["faults"] = matched
            payload["fault_fingerprint"] = fp
            stamped.append(i)
    return stamped


def _flaky_token(spec: Dict[str, Any], fingerprint: str) -> str:
    import tempfile
    root = spec.get("token_dir") or tempfile.gettempdir()
    return os.path.join(root, f"repro-flaky-{fingerprint[:32]}.token")


def fire_faults(payload: Dict[str, Any], in_process: bool = False) -> bool:
    """Execute the faults stamped on ``payload`` (no-op when none).

    Returns ``True`` when the cluster's outcome should be corrupted
    after the analysis runs (the ``corrupt`` kind); raises, sleeps or
    kills the process for the other kinds.  ``in_process`` softens
    ``crash`` and ``hang`` into exceptions so in-process backends can
    exercise the same recovery path without killing the host.
    """
    corrupt = False
    fingerprint = payload.get("fault_fingerprint", "")
    for spec in payload.get("faults", ()):
        kind = spec.get("kind")
        if kind == "corrupt":
            corrupt = True
        elif kind == "crash":
            if in_process:
                raise RuntimeError("injected fault: crash")
            os._exit(CRASH_EXIT_CODE)
        elif kind == "hang":
            if in_process:
                raise RuntimeError("injected fault: hang")
            deadline = time.monotonic() + float(spec.get("duration", 30.0))
            while time.monotonic() < deadline:
                time.sleep(0.05)
            raise RuntimeError("injected fault: hang (slept out)")
        elif kind == "flaky-once":
            token = _flaky_token(spec, fingerprint)
            if not os.path.exists(token):
                try:
                    with open(token, "x"):
                        pass
                except OSError:
                    pass  # lost the race: someone else failed first
                else:
                    raise RuntimeError("injected fault: flaky-once")
    return corrupt


def corrupt_outcome() -> Dict[str, Any]:
    """The garbage a ``corrupt`` fault returns in place of a real
    outcome — shaped wrongly on purpose so validation rejects it."""
    return {"points_to": "0xdeadbeef", "stats": None,
            "corrupted": True}

"""Algorithm 1: relevant pointers ``V_P`` and statements ``St_P``.

Given a cluster ``P`` (a Steensgaard partition, an Andersen cluster, or
any pointer set), compute

* ``V_P`` — every object whose value may affect aliases of pointers in
  ``P`` (paper: "the set of variables (or references or dereferences
  thereof) which may affect aliases of pointers in P"), and
* ``St_P`` — the locations of all statements that may modify those
  values.  Outside ``St_P`` the reduced program ``Prog_P`` behaves as
  skips (Theorem 6 proves no alias is lost).

The closure is the paper's fixpoint, phrased over our normalized
statement forms:

* ``p = q``   with ``p ∈ V_P``                adds ``q``;
* ``p = &o``  with ``p ∈ V_P``                adds nothing (the address
  is a constant; ``o``'s *content* cannot affect ``p``'s aliases);
* ``p = *y``  with ``p ∈ V_P``                adds ``y`` and every member
  of ``y``'s pointee partition — the cells ``*y`` may denote;
* ``*x = r``  where ``x``'s pointee partition meets ``V_P`` (this covers
  both the paper's ``q > p`` case, transitively via the fixpoint, and
  the cyclic ``q = ~q`` case)                 adds ``x`` and ``r``;
* ``assume p == q`` / ``assume p != q`` with either operand in ``V_P``
  adds the other operand.  This case is ours, not the paper's: our FSCI
  refines state through assumes (Section 3 path sensitivity), so ``q``'s
  value can *restrict* ``p``'s aliases.  Dropping ``q``'s definitions
  from the slice would leave ``q`` uninitialised there, disable the
  refinement, and let the sliced run report aliases the full run rules
  out — strictly more facts, which breaks Theorem 6's equality.

The fixpoint runs as a worklist over per-variable statement indexes
built once per (program, Steensgaard result) pair and cached — the
cascade calls this for every cluster, so the index pays for itself
immediately.

Figure 3 of the paper is reproduced as a unit test: for ``P = {a, b}``
the slice keeps ``x = &a``, ``y = &b`` and ``*x = *y`` but drops
``p = x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..analysis.steensgaard import SteensgaardResult
from ..ir import (
    AddrOf,
    Assume,
    Copy,
    Load,
    Loc,
    MemObject,
    NullAssign,
    Program,
    Store,
    Var,
)


@dataclass(frozen=True)
class RelevantSlice:
    """The result of Algorithm 1 for one cluster."""

    cluster: FrozenSet[MemObject]
    vp: FrozenSet[MemObject]
    statements: FrozenSet[Loc]

    @property
    def size(self) -> int:
        return len(self.statements)

    def functions(self) -> FrozenSet[str]:
        """Functions containing at least one relevant statement — the
        only ones needing summaries for this cluster."""
        return frozenset(loc.function for loc in self.statements)


class RelevantIndex:
    """Per-variable statement indexes supporting the worklist closure."""

    def __init__(self, program: Program, steens: SteensgaardResult) -> None:
        self.program = program
        self.steens = steens
        # Direct assignments (Copy/AddrOf/Load/NullAssign) by lhs.
        self.assigns_by_lhs: Dict[Var, List[Tuple[Loc, object]]] = {}
        # Stores indexed by the partition their write may land in.
        self.stores_by_target_part: Dict[object, List[Tuple[Loc, Store]]] = {}
        # Two-operand assumes indexed by each operand (FSCI refines both
        # sides, so relevance flows across the comparison either way).
        self.assumes_by_operand: Dict[Var, List[Tuple[Loc, Assume]]] = {}
        for loc, stmt in program.statements():
            if isinstance(stmt, (Copy, AddrOf, Load, NullAssign)):
                self.assigns_by_lhs.setdefault(stmt.lhs, []).append((loc, stmt))
            elif isinstance(stmt, Store):
                # A store may land in any partition of the lhs' pointee
                # cells — exactly one for classic Steensgaard, possibly
                # several for the field-sensitive variant (per-field
                # cells split a pointee class across partitions).
                for key in steens.pointee_keys(stmt.lhs):
                    self.stores_by_target_part.setdefault(key, []).append(
                        (loc, stmt))
            elif isinstance(stmt, Assume) and stmt.rhs is not None:
                for operand in (stmt.lhs, stmt.rhs):
                    self.assumes_by_operand.setdefault(operand, []).append(
                        (loc, stmt))

    @classmethod
    def of(cls, program: Program, steens: SteensgaardResult
           ) -> "RelevantIndex":
        cached = getattr(steens, "_relevant_index", None)
        if cached is None or cached.program is not program:
            cached = cls(program, steens)
            steens._relevant_index = cached  # type: ignore[attr-defined]
        return cached


def relevant_statements(program: Program, steens: SteensgaardResult,
                        cluster: Iterable[MemObject]) -> RelevantSlice:
    """Run Algorithm 1 for ``cluster``."""
    index = RelevantIndex.of(program, steens)
    vp: Set[MemObject] = set(cluster)
    worklist: List[MemObject] = list(vp)
    statements: Set[Loc] = set()

    def add(obj: MemObject) -> None:
        if obj not in vp:
            vp.add(obj)
            worklist.append(obj)

    while worklist:
        v = worklist.pop()
        # Direct assignments to v: statements are relevant; track sources.
        for loc, stmt in index.assigns_by_lhs.get(v, ()):
            statements.add(loc)
            if isinstance(stmt, Copy):
                add(stmt.rhs)
            elif isinstance(stmt, Load):
                add(stmt.rhs)
                pointees = steens.pointee_partition(stmt.rhs)
                if pointees:
                    for m in pointees:
                        add(m)
            # AddrOf / NullAssign introduce no new tracked values.
        # Stores that may write v's cell.
        key = steens._part_of.get(v)
        if key is not None:
            for loc, stmt in index.stores_by_target_part.get(key, ()):
                statements.add(loc)
                add(stmt.lhs)
                add(stmt.rhs)
        # Assumes comparing v against another pointer: the other side's
        # value gates the refinement of v, so it (and hence its defining
        # statements, via the fixpoint) must survive the slice.
        for loc, stmt in index.assumes_by_operand.get(v, ()):
            statements.add(loc)
            add(stmt.lhs)
            assert stmt.rhs is not None  # single-operand assumes not indexed
            add(stmt.rhs)
    return RelevantSlice(cluster=frozenset(cluster), vp=frozenset(vp),
                         statements=frozenset(statements))


def dovetail_schedule(steens: SteensgaardResult,
                      vp: Iterable[MemObject]
                      ) -> List[List[FrozenSet[MemObject]]]:
    """Algorithm 2's processing order for a cluster's tracked set.

    ``V_P`` spans several Steensgaard partitions at different depths; the
    paper dovetails summary computation with FSCI-alias computation "in
    non-decreasing order of Steensgaard depth".  This returns ``V_P``'s
    partitions grouped by depth, shallowest first — the exact order
    Algorithm 2 iterates (our dataflow-based FSCI computes all depths in
    one fixpoint, which subsumes the schedule; the function exists so the
    paper's order is inspectable and testable).
    """
    groups: Dict[int, Dict[object, Set[MemObject]]] = {}
    for obj in vp:
        depth = steens.depth_of(obj)
        key = steens._part_of.get(obj, ("t", obj))
        groups.setdefault(depth, {}).setdefault(key, set()).add(obj)
    return [
        [frozenset(members) for _k, members in sorted(
            groups[depth].items(), key=lambda kv: str(kv[0]))]
        for depth in sorted(groups)
    ]

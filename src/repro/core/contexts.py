"""Calling-context enumeration and per-context queries.

The paper's motivation for summarization: "the number of contexts grows
exponentially with the number of functions in the given program".  This
module makes that concrete — it enumerates the call chains (the paper's
``con = f1 ... fn``) leading to a function, with recursion truncated at a
configurable unrolling depth, and offers convenience wrappers that ask a
:class:`~repro.core.bootstrap.BootstrapResult` the same question in every
context.

Because the FSCS stage answers from *summaries*, the per-context cost is
a splice, not a re-analysis: exactly the paper's point.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..ir import CallGraph, Loc, MemObject, Program, Var

#: A context is the chain of function names from the entry (paper: f1..fn).
Context = Tuple[str, ...]


def enumerate_contexts(program: Program, function: str,
                       max_unroll: int = 1,
                       limit: Optional[int] = 10_000,
                       callgraph: Optional[CallGraph] = None
                       ) -> List[Context]:
    """All call chains ``entry -> ... -> function``.

    ``max_unroll`` bounds how many times any single function may appear
    in one chain: ``1`` yields acyclic chains only, ``2`` unrolls each
    recursive cycle once, and so on.  ``limit`` caps the result count —
    the exponential growth the paper warns about is real, so overflowing
    the cap raises :class:`ValueError` rather than silently truncating.
    """
    cg = callgraph or CallGraph(program)
    entry = program.entry
    out: List[Context] = []

    def walk(chain: List[str]) -> None:
        if limit is not None and len(out) > limit:
            raise ValueError(
                f"more than {limit} contexts for {function!r}; raise "
                "`limit` or lower `max_unroll`")
        if chain[-1] == function:
            out.append(tuple(chain))
            # A recursive target can also appear deeper in longer chains;
            # keep expanding below, subject to the unroll bound.
        for callee in sorted(cg.callees(chain[-1])):
            if chain.count(callee) >= max_unroll:
                continue
            walk(chain + [callee])

    walk([entry])
    return out


def context_count(program: Program, max_unroll: int = 1) -> Dict[str, int]:
    """Context counts per function — the paper's blow-up, quantified."""
    cg = CallGraph(program)
    counts: Dict[str, int] = {}
    for f in sorted(program.functions):
        try:
            counts[f] = len(enumerate_contexts(program, f,
                                               max_unroll=max_unroll,
                                               callgraph=cg))
        except ValueError:
            counts[f] = -1  # over the cap
    return counts


def points_to_by_context(result, p: Var, loc: Loc,
                         max_unroll: int = 1,
                         limit: Optional[int] = 1000
                         ) -> Dict[Context, FrozenSet[MemObject]]:
    """``points_to(p, loc)`` separately for every context of ``loc``'s
    function (``result`` is a BootstrapResult or ClusterFSCS-like object
    with a context-aware ``points_to``)."""
    program = result.program
    contexts = enumerate_contexts(program, loc.function,
                                  max_unroll=max_unroll, limit=limit)
    return {con: result.points_to(p, loc, context=list(con))
            for con in contexts}


def context_sensitivity_gain(result, p: Var, loc: Loc,
                             max_unroll: int = 1) -> Tuple[int, int]:
    """(largest per-context set size, context-insensitive set size):
    equal sizes mean context sensitivity bought nothing for this query."""
    per_context = points_to_by_context(result, p, loc,
                                       max_unroll=max_unroll)
    ci = result.points_to(p, loc)
    worst = max((len(v) for v in per_context.values()), default=0)
    return worst, len(ci)

"""The top-level facade: bootstrapped flow- and context-sensitive alias
analysis.

:class:`BootstrapAnalyzer` wires the whole paper together:

1. run the cascade (Steensgaard partitioning, optional One-Flow,
   Andersen clustering, Algorithm 1 slices);
2. lazily build one :class:`~repro.analysis.fscs.ClusterFSCS` per
   cluster, on demand — the paper's flexibility argument: "based on the
   application, we may not be interested in accurate aliases for all
   pointers in the program but only a small subset";
3. answer may-alias / points-to queries by combining per-cluster
   answers (Theorem 7's disjunctive cover), with the Steensgaard
   partition check as a constant-time negative fast path;
4. optionally pre-analyze every cluster under the paper's simulated
   5-way parallel schedule (:meth:`BootstrapResult.analyze_all`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from ..analysis.fscs import ClusterFSCS, Context
from ..ir import CallGraph, Loc, MemObject, Program, Var
from .cascade import CascadeConfig, CascadeResult, run_cascade
from .clusters import Cluster
from .parallel import ParallelReport, ParallelRunner
from .shipping import build_payload, cluster_outcome, payload_fingerprint
from .summary_cache import SummaryCache


@dataclass
class BootstrapConfig:
    """Configuration for the full bootstrapped analysis."""

    cascade: CascadeConfig = field(default_factory=CascadeConfig)
    parts: int = 5
    fscs_budget: Optional[int] = None
    max_cond_atoms: int = 4


class BootstrapResult:
    """Queryable result of a bootstrapped analysis."""

    def __init__(self, program: Program, cascade: CascadeResult,
                 config: BootstrapConfig) -> None:
        self.program = program
        self.cascade = cascade
        self.config = config
        self.callgraph = CallGraph(program)
        self._analyses: Dict[int, ClusterFSCS] = {}
        self._fsci_cache: Dict[FrozenSet, object] = {}

    # ------------------------------------------------------------------
    # cluster plumbing
    # ------------------------------------------------------------------
    @property
    def clusters(self) -> List[Cluster]:
        return self.cascade.clusters

    def analysis_for(self, cluster: Cluster) -> ClusterFSCS:
        """The (cached) FSCS analysis of one cluster."""
        key = id(cluster)
        analysis = self._analyses.get(key)
        if analysis is None:
            # Sibling sub-clusters of one partition share a single FSCI
            # pass over the partition's slice (a sound superset of each
            # sub-cluster's own slice).
            fsci = None
            parent = cluster.parent_slice
            if parent is not None:
                cache_key = parent.statements
                fsci = self._fsci_cache.get(cache_key)
                if fsci is None:
                    probe = ClusterFSCS(
                        self.program, cluster=(),
                        tracked=parent.vp, relevant=parent.statements,
                        callgraph=self.callgraph)
                    fsci = probe.fsci
                    self._fsci_cache[cache_key] = fsci
            analysis = ClusterFSCS(
                self.program,
                cluster=cluster.pointer_members,
                tracked=cluster.slice.vp,
                relevant=cluster.slice.statements,
                callgraph=self.callgraph,
                fsci=fsci,
                max_cond_atoms=self.config.max_cond_atoms,
                budget=self.config.fscs_budget,
            )
            self._analyses[key] = analysis
        return analysis

    @property
    def analyzed_cluster_count(self) -> int:
        """How many clusters were actually analyzed (the demand-driven
        savings the paper advertises)."""
        return len(self._analyses)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def may_alias(self, p: Var, q: Var, loc: Loc,
                  context: Optional[Context] = None) -> bool:
        """FSCS may-alias, gated by the partition fast path."""
        if p == q:
            return True
        if not self.cascade.steensgaard.same_partition(p, q):
            return False
        shared = [c for c in self.cascade.clusters
                  if p in c.members and q in c.members]
        if not shared:
            return False
        return any(self.analysis_for(c).may_alias(p, q, loc, context)
                   for c in shared)

    def points_to(self, p: Var, loc: Loc,
                  context: Optional[Context] = None) -> FrozenSet[MemObject]:
        """Objects ``p`` may point to at ``loc`` — the union over ``p``'s
        clusters (Theorem 7)."""
        objs: Set[MemObject] = set()
        for c in self.cascade.clusters_containing([p]):
            objs.update(self.analysis_for(c).points_to(p, loc, context))
        return frozenset(objs)

    def alias_set(self, p: Var, loc: Loc,
                  context: Optional[Context] = None) -> FrozenSet[Var]:
        out: Set[Var] = set()
        for c in self.cascade.clusters_containing([p]):
            out |= self.analysis_for(c).alias_set(p, loc, context)
        return frozenset(out)

    # ------------------------------------------------------------------
    # bulk analysis (the Table 1 workload)
    # ------------------------------------------------------------------
    def analyze_all(self, clusters: Optional[Sequence[Cluster]] = None,
                    simulate: bool = True,
                    backend: Optional[str] = None,
                    jobs: Optional[int] = None,
                    scheduler: str = "greedy",
                    cache: "Optional[object]" = None) -> ParallelReport:
        """Build summaries for every cluster (or a selected subset).

        ``backend`` picks execution (``simulate``/``threads``/
        ``processes``; the legacy ``simulate`` flag covers the first two
        when ``backend`` is omitted); ``scheduler`` picks the part
        assignment (``greedy``/``lpt``); ``jobs`` sets the worker (and,
        for ``processes``, part) count; ``cache`` — a
        :class:`~repro.core.summary_cache.SummaryCache` or a directory
        path — skips every cluster whose sliced sub-program fingerprint
        already has a stored outcome.  Results are per-cluster outcome
        dicts (``{"stats", "points_to"}``) in input order.
        """
        targets = list(clusters) if clusters is not None else self.clusters
        if backend is None:
            backend = "simulate" if simulate else "threads"
        cache_obj = SummaryCache(cache) if isinstance(cache, str) else cache
        parts = self.config.parts
        if backend == "processes" and jobs is not None:
            parts = jobs  # one worker per part

        # Payloads/fingerprints are only built when something consumes
        # them: the processes backend or the cache.
        payloads = fingerprints = None
        if backend == "processes" or cache_obj is not None:
            subcache: Dict[int, Dict] = {}
            payloads = [build_payload(self.program, c, self.callgraph,
                                      max_cond_atoms=self.config.max_cond_atoms,
                                      budget=self.config.fscs_budget,
                                      subprogram_cache=subcache)
                        for c in targets]
            fingerprints = [payload_fingerprint(p) for p in payloads]

        cached: Dict[int, Dict] = {}
        if cache_obj is not None:
            for i, fp in enumerate(fingerprints):
                outcome = cache_obj.get(fp)
                if outcome is not None:
                    cached[i] = outcome
        pending = [i for i in range(len(targets)) if i not in cached]

        runner: ParallelRunner[Dict] = ParallelRunner(
            parts=parts, backend=backend, scheduler=scheduler, jobs=jobs)
        if pending:
            sub = [targets[i] for i in pending]
            if backend == "processes":
                report = runner.run_payloads(
                    [payloads[i] for i in pending], sub)
            else:
                report = runner.run(
                    sub, lambda c: cluster_outcome(self.analysis_for(c)))
        else:
            report = ParallelReport(part_times=[], cluster_times={},
                                    results=[], backend=backend,
                                    scheduler=scheduler)
        if not cached and len(pending) == len(targets):
            # Fast path: nothing came from the cache, indices align.
            report.cache_misses = len(pending) if cache_obj is not None else 0
            report.fingerprints = fingerprints
            if cache_obj is not None:
                for i in pending:
                    cache_obj.put(fingerprints[i], report.results[i])
            return report

        # Merge cached outcomes (cost 0.0 — no work was done) with the
        # freshly computed ones, restoring input-order indexing.
        results: List[object] = [None] * len(targets)
        cluster_times: Dict[int, float] = {}
        schedule = [[pending[j] for j in part] for part in report.schedule]
        for j, i in enumerate(pending):
            results[i] = report.results[j]
            cluster_times[i] = report.cluster_times.get(j, 0.0)
            if cache_obj is not None:
                cache_obj.put(fingerprints[i], report.results[j])
        for i, outcome in cached.items():
            results[i] = outcome
            cluster_times[i] = 0.0
        return ParallelReport(
            part_times=report.part_times, cluster_times=cluster_times,
            results=results, backend=backend, scheduler=scheduler,
            schedule=schedule, wall_time=report.wall_time,
            cache_hits=len(cached), cache_misses=len(pending),
            fingerprints=fingerprints)


class BootstrapAnalyzer:
    """Entry point: configure once, run, query many times."""

    def __init__(self, program: Program,
                 config: Optional[BootstrapConfig] = None) -> None:
        self.program = program
        self.config = config or BootstrapConfig()

    def run(self) -> BootstrapResult:
        cascade = run_cascade(self.program, self.config.cascade)
        return BootstrapResult(self.program, cascade, self.config)

"""The top-level facade: bootstrapped flow- and context-sensitive alias
analysis.

:class:`BootstrapAnalyzer` wires the whole paper together:

1. run the cascade (Steensgaard partitioning, optional One-Flow,
   Andersen clustering, Algorithm 1 slices);
2. lazily build one :class:`~repro.analysis.fscs.ClusterFSCS` per
   cluster, on demand — the paper's flexibility argument: "based on the
   application, we may not be interested in accurate aliases for all
   pointers in the program but only a small subset";
3. answer may-alias / points-to queries by combining per-cluster
   answers (Theorem 7's disjunctive cover), with the Steensgaard
   partition check as a constant-time negative fast path;
4. optionally pre-analyze every cluster under the paper's simulated
   5-way parallel schedule (:meth:`BootstrapResult.analyze_all`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from ..analysis.fscs import ClusterFSCS, Context
from ..errors import AnalysisBudgetExceeded
from ..ir import CallGraph, Loc, MemObject, Program, Var
from .cascade import CascadeConfig, CascadeResult, run_cascade
from .clusters import Cluster
from .faults import FaultSpec, attach_faults, corrupt_outcome, fire_faults
from .parallel import ParallelReport, ParallelRunner
from .resilience import (
    ClusterExecutionError,
    RunPolicy,
    coarsest,
    degrade_ladder,
    is_degraded,
    validate_outcome,
)
from .shipping import build_payload, cluster_outcome, payload_fingerprint
from .summary_cache import SummaryCache


@dataclass
class BootstrapConfig:
    """Configuration for the full bootstrapped analysis."""

    cascade: CascadeConfig = field(default_factory=CascadeConfig)
    parts: int = 5
    fscs_budget: Optional[int] = None
    max_cond_atoms: int = 4
    #: Use the bitmask solver kernels for in-process cluster analyses
    #: (``False`` = frozenset reference backends; identical results).
    #: Deliberately *not* shipped in payloads: fingerprints and worker
    #: outcomes are representation-independent.
    use_kernel: bool = True


class BootstrapResult:
    """Queryable result of a bootstrapped analysis."""

    def __init__(self, program: Program, cascade: CascadeResult,
                 config: BootstrapConfig) -> None:
        self.program = program
        self.cascade = cascade
        self.config = config
        self.callgraph = CallGraph(program)
        self._analyses: Dict[int, ClusterFSCS] = {}
        self._fsci_cache: Dict[FrozenSet, object] = {}
        #: Cluster position (in :attr:`clusters`) -> achieved precision
        #: level, for clusters whose last :meth:`analyze_all` outcome was
        #: degraded by the resilience layer.  Diagnostics derived from
        #: these clusters carry a degraded-precision marker.
        self.degraded_clusters: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # cluster plumbing
    # ------------------------------------------------------------------
    @property
    def clusters(self) -> List[Cluster]:
        return self.cascade.clusters

    def analysis_for(self, cluster: Cluster) -> ClusterFSCS:
        """The (cached) FSCS analysis of one cluster."""
        key = id(cluster)
        analysis = self._analyses.get(key)
        if analysis is None:
            # Sibling sub-clusters of one partition share a single FSCI
            # pass over the partition's slice (a sound superset of each
            # sub-cluster's own slice).
            fsci = None
            parent = cluster.parent_slice
            if parent is not None:
                cache_key = parent.statements
                fsci = self._fsci_cache.get(cache_key)
                if fsci is None:
                    probe = ClusterFSCS(
                        self.program, cluster=(),
                        tracked=parent.vp, relevant=parent.statements,
                        callgraph=self.callgraph,
                        use_kernel=self.config.use_kernel)
                    fsci = probe.fsci
                    self._fsci_cache[cache_key] = fsci
            analysis = ClusterFSCS(
                self.program,
                cluster=cluster.pointer_members,
                tracked=cluster.slice.vp,
                relevant=cluster.slice.statements,
                callgraph=self.callgraph,
                fsci=fsci,
                max_cond_atoms=self.config.max_cond_atoms,
                budget=self.config.fscs_budget,
                use_kernel=self.config.use_kernel,
            )
            self._analyses[key] = analysis
        return analysis

    @property
    def analyzed_cluster_count(self) -> int:
        """How many clusters were actually analyzed (the demand-driven
        savings the paper advertises)."""
        return len(self._analyses)

    def degraded_precision_of(self, clusters: Iterable[Cluster]
                              ) -> Optional[str]:
        """The coarsest precision level among ``clusters`` that were
        degraded by the last bulk run, or ``None`` when every one of
        them was analyzed at full FSCS precision.  Checkers use this to
        stamp diagnostics whose supporting clusters degraded."""
        pos = {id(c): i for i, c in enumerate(self.clusters)}
        levels = []
        for c in clusters:
            i = pos.get(id(c))
            if i is not None and i in self.degraded_clusters:
                levels.append(self.degraded_clusters[i])
        return coarsest(levels) if levels else None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def may_alias(self, p: Var, q: Var, loc: Loc,
                  context: Optional[Context] = None) -> bool:
        """FSCS may-alias, gated by the partition fast path."""
        if p == q:
            return True
        if not self.cascade.steensgaard.same_partition(p, q):
            return False
        shared = [c for c in self.cascade.clusters
                  if p in c.members and q in c.members]
        if not shared:
            return False
        return any(self.analysis_for(c).may_alias(p, q, loc, context)
                   for c in shared)

    def points_to(self, p: Var, loc: Loc,
                  context: Optional[Context] = None) -> FrozenSet[MemObject]:
        """Objects ``p`` may point to at ``loc`` — the union over ``p``'s
        clusters (Theorem 7)."""
        objs: Set[MemObject] = set()
        for c in self.cascade.clusters_containing([p]):
            objs.update(self.analysis_for(c).points_to(p, loc, context))
        return frozenset(objs)

    def alias_set(self, p: Var, loc: Loc,
                  context: Optional[Context] = None) -> FrozenSet[Var]:
        out: Set[Var] = set()
        for c in self.cascade.clusters_containing([p]):
            out |= self.analysis_for(c).alias_set(p, loc, context)
        return frozenset(out)

    # ------------------------------------------------------------------
    # bulk analysis (the Table 1 workload)
    # ------------------------------------------------------------------
    def analyze_all(self, clusters: Optional[Sequence[Cluster]] = None,
                    simulate: bool = True,
                    backend: Optional[str] = None,
                    jobs: Optional[int] = None,
                    scheduler: str = "greedy",
                    cache: "Optional[object]" = None,
                    policy: Optional[RunPolicy] = None,
                    faults: Optional[Sequence[FaultSpec]] = None
                    ) -> ParallelReport:
        """Build summaries for every cluster (or a selected subset).

        ``backend`` picks execution (``simulate``/``threads``/
        ``processes``; the legacy ``simulate`` flag covers the first two
        when ``backend`` is omitted); ``scheduler`` picks the part
        assignment (``greedy``/``lpt``); ``jobs`` sets the worker (and,
        for ``processes``, part) count; ``cache`` — a
        :class:`~repro.core.summary_cache.SummaryCache` or a directory
        path — skips every cluster whose sliced sub-program fingerprint
        already has a stored outcome.  Results are per-cluster outcome
        dicts (``{"stats", "points_to"}``) in input order.

        ``policy`` (a :class:`~repro.core.resilience.RunPolicy`) adds
        fault tolerance: per-cluster timeouts, bounded retries and —
        when ``policy.degrade`` — sound degradation down the cascade for
        clusters that still fail (their outcomes gain
        ``status``/``precision`` tags and are *not* written to the
        cache).  ``faults`` injects deterministic failures
        (:class:`~repro.core.faults.FaultSpec`) for testing the
        resilience path; faulted payloads keep their clean fingerprints.
        """
        targets = list(clusters) if clusters is not None else self.clusters
        if backend is None:
            backend = "simulate" if simulate else "threads"
        cache_obj = SummaryCache(cache) if isinstance(cache, str) else cache
        parts = self.config.parts
        if backend == "processes" and jobs is not None:
            parts = jobs  # one worker per part

        # Payloads/fingerprints are only built when something consumes
        # them: the processes backend, the cache, or fault injection
        # (fault selectors match on fingerprints).
        payloads = fingerprints = None
        if backend == "processes" or cache_obj is not None or faults:
            subcache: Dict[int, Dict] = {}
            payloads = [build_payload(self.program, c, self.callgraph,
                                      max_cond_atoms=self.config.max_cond_atoms,
                                      budget=self.config.fscs_budget,
                                      subprogram_cache=subcache)
                        for c in targets]
            fingerprints = [payload_fingerprint(p) for p in payloads]
            if faults:
                attach_faults(payloads, fingerprints, faults)

        cached: Dict[int, Dict] = {}
        if cache_obj is not None:
            for i, fp in enumerate(fingerprints):
                outcome = cache_obj.get(fp)
                if outcome is not None:
                    cached[i] = outcome
        pending = [i for i in range(len(targets)) if i not in cached]

        runner: ParallelRunner[Dict] = ParallelRunner(
            parts=parts, backend=backend, scheduler=scheduler, jobs=jobs)
        attempts_map: Dict[int, int] = {}
        if pending:
            sub = [targets[i] for i in pending]
            if backend == "processes":
                report = runner.run_payloads(
                    [payloads[i] for i in pending], sub, policy=policy)
            elif policy is not None or faults:
                task = self._resilient_task(
                    targets, payloads, policy or RunPolicy(degrade=False),
                    attempts_map)
                report = runner.run(sub, task)
                # attempts_map is keyed by full-target index; a report
                # keys by position in the batch that actually ran (the
                # merge below maps those back through ``pending``).
                sub_pos = {i: j for j, i in enumerate(pending)}
                report.attempts = {sub_pos[i]: n
                                   for i, n in attempts_map.items()}
            else:
                report = runner.run(
                    sub, lambda c: cluster_outcome(self.analysis_for(c)))
        else:
            report = ParallelReport(part_times=[], cluster_times={},
                                    results=[], backend=backend,
                                    scheduler=scheduler)
        if not cached and len(pending) == len(targets):
            # Fast path: nothing came from the cache, indices align.
            report.cache_misses = len(pending) if cache_obj is not None else 0
            report.fingerprints = fingerprints
            if cache_obj is not None:
                for i in pending:
                    # Degraded outcomes are coarser than what a healthy
                    # run would compute: never cache them, so the next
                    # run retries at full precision.
                    if not is_degraded(report.results[i]):
                        cache_obj.put(fingerprints[i], report.results[i])
            self._note_degraded(targets, report.results)
            return report

        # Merge cached outcomes (cost 0.0 — no work was done) with the
        # freshly computed ones, restoring input-order indexing.
        results: List[object] = [None] * len(targets)
        cluster_times: Dict[int, float] = {}
        schedule = [[pending[j] for j in part] for part in report.schedule]
        attempts = {pending[j]: n for j, n in report.attempts.items()}
        for j, i in enumerate(pending):
            results[i] = report.results[j]
            cluster_times[i] = report.cluster_times.get(j, 0.0)
            if cache_obj is not None and not is_degraded(report.results[j]):
                cache_obj.put(fingerprints[i], report.results[j])
        for i, outcome in cached.items():
            results[i] = outcome
            cluster_times[i] = 0.0
        self._note_degraded(targets, results)
        return ParallelReport(
            part_times=report.part_times, cluster_times=cluster_times,
            results=results, backend=backend, scheduler=scheduler,
            schedule=schedule, wall_time=report.wall_time,
            cache_hits=len(cached), cache_misses=len(pending),
            fingerprints=fingerprints, attempts=attempts)

    # ------------------------------------------------------------------
    # resilience plumbing
    # ------------------------------------------------------------------
    def _resilient_task(self, targets: Sequence[Cluster],
                        payloads: Optional[List[Dict[str, Any]]],
                        policy: RunPolicy,
                        attempts_map: Dict[int, int]):
        """The in-process (simulate/threads) analogue of the resilient
        worker path: fire injected faults, retry with backoff, validate,
        and degrade down the cascade on persistent failure.  Reuses the
        already-computed Steensgaard result for the coarsest rung."""
        index_of = {}
        for i, c in enumerate(targets):
            index_of.setdefault(id(c), i)

        def task(c: Cluster) -> Dict[str, Any]:
            i = index_of[id(c)]
            payload = payloads[i] if payloads is not None else None
            names = [str(p) for p in c.pointer_members]
            error = "unknown failure"
            for attempt in range(1, policy.retries + 2):
                attempts_map[i] = attempt
                if attempt > 1:
                    time.sleep(policy.delay(attempt, key=str(i)))
                try:
                    corrupt = False
                    if payload is not None and payload.get("faults"):
                        corrupt = fire_faults(payload, in_process=True)
                    outcome = corrupt_outcome() if corrupt \
                        else cluster_outcome(self.analysis_for(c))
                    if not validate_outcome(outcome, names):
                        error = "invalid outcome (corrupted result)"
                        continue
                    return outcome
                except AnalysisBudgetExceeded as exc:
                    if not policy.degrade:
                        raise
                    error = str(exc)
                    break  # deterministic; retrying cannot help
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    continue
            if not policy.degrade:
                raise ClusterExecutionError(i, error)
            return degrade_ladder(
                self.program, c, steens=self.cascade.steensgaard,
                callgraph=self.callgraph, error=error,
                attempts=attempts_map[i])

        return task

    def _note_degraded(self, targets: Sequence[Cluster],
                       results: Sequence[object]) -> None:
        """Record which of *this result's* clusters came back degraded,
        keyed by their position in :attr:`clusters` (clusters outside
        that list — ad-hoc subsets — are query-invisible and skipped)."""
        pos = {id(c): i for i, c in enumerate(self.clusters)}
        for c, outcome in zip(targets, results):
            i = pos.get(id(c))
            if i is None:
                continue
            if is_degraded(outcome):
                self.degraded_clusters[i] = str(
                    outcome.get("precision", "steensgaard"))  # type: ignore[union-attr]
            else:
                self.degraded_clusters.pop(i, None)


class BootstrapAnalyzer:
    """Entry point: configure once, run, query many times."""

    def __init__(self, program: Program,
                 config: Optional[BootstrapConfig] = None) -> None:
        self.program = program
        self.config = config or BootstrapConfig()

    def run(self) -> BootstrapResult:
        cascade = run_cascade(self.program, self.config.cascade)
        return BootstrapResult(self.program, cascade, self.config)

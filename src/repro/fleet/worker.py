"""Worker daemons and the coordinator's async links to them.

A fleet worker is just the PR-3 :class:`~repro.server.daemon.AliasServer`
— same protocol, same stores, same resilience knobs — reached over TCP.
Workers come in two flavors:

* :class:`LocalWorker` — spawned by the coordinator as a subprocess
  (``python -m repro serve --port 0 ...``); the kernel-chosen port is
  parsed off the daemon's "listening on" line.  Local workers can be
  respawned after a crash, which is how a dead shard heals.
* *addressed* workers — any ``host:port`` the operator points the
  coordinator at (:func:`parse_worker_addr`); the coordinator never
  manages their lifecycle, only their circuit breaker.

:class:`WorkerLink` is the coordinator's side of the wire: a small pool
of persistent connections per worker, each carrying pipelined frames.
The daemon handles one connection with one thread, sequentially, so
responses per connection come back in request order — the link matches
them FIFO without ever decoding a response (the hot path moves opaque
bytes).  Writes are fire-and-forget into the transport buffer, which
coalesces every frame queued in one event-loop iteration into a single
send: that is the front door's query *batching*.

A link failure (reset, EOF, timeout) fails every in-flight future on
that connection; the coordinator records it on the worker's breaker and
reroutes.  A timeout additionally *poisons* the connection — the FIFO
discipline would otherwise misalign the late response with the next
request — so the link drops it and reconnects fresh.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..errors import ReproError

#: StreamReader limit for worker responses (diagnostics on big files
#: can be megabytes; the default 64 KiB readline limit would truncate).
RESPONSE_LIMIT = 32 * 1024 * 1024

#: Sentinel for ``call_raw(expect_id=...)``: ``None`` is a legal
#: request id, so absence needs its own marker.
_NO_ID = object()

_LISTEN_RE = re.compile(r"listening on tcp:([0-9.]+):(\d+)")


class WorkerError(ReproError):
    """A worker link failed (connect, transport, or timeout)."""


class WorkerTimeout(WorkerError):
    """A worker did not answer within the per-request deadline."""


def parse_worker_addr(arg: str) -> Tuple[str, int]:
    """``host:port`` (or bare ``port`` for localhost) -> address."""
    host, sep, port = arg.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", arg
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise ValueError(f"bad worker address {arg!r}: expected "
                         "HOST:PORT or PORT")


# ----------------------------------------------------------------------
# local subprocess workers
# ----------------------------------------------------------------------

class LocalWorker:
    """One spawned ``repro serve`` subprocess the coordinator owns."""

    def __init__(self, name: str, serve_args: Optional[List[str]] = None,
                 spawn_timeout: float = 60.0) -> None:
        self.name = name
        self.serve_args = list(serve_args or [])
        self.spawn_timeout = spawn_timeout
        self.proc: Optional[subprocess.Popen] = None
        self.host = "127.0.0.1"
        self.port: Optional[int] = None
        self.spawns = 0

    # ------------------------------------------------------------------
    def spawn(self) -> Tuple[str, int]:
        """Start (or restart) the daemon; returns its bound address."""
        env = dict(os.environ)
        # The worker must import the same repro package the coordinator
        # runs, installed or straight from a source tree.
        pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        parts = [pkg_root] + [p for p in
                              env.get("PYTHONPATH", "").split(os.pathsep)
                              if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--host", self.host, "--port", "0"] + self.serve_args,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True)
        self.spawns += 1
        self.port = self._wait_for_port()
        return self.host, self.port

    def _wait_for_port(self) -> int:
        """Parse the daemon's "listening on" line off its stdout, then
        keep draining the pipe in the background so the worker never
        blocks on a full pipe buffer."""
        assert self.proc is not None and self.proc.stdout is not None
        found: List[int] = []

        def reader() -> None:
            for line in self.proc.stdout:
                if not found:
                    match = _LISTEN_RE.search(line)
                    if match:
                        found.append(int(match.group(2)))
                        ready.set()
            ready.set()

        ready = threading.Event()
        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        deadline = time.monotonic() + self.spawn_timeout
        while not found:
            if not ready.wait(0.1) and time.monotonic() > deadline:
                break
            if found:
                break
            if self.proc.poll() is not None:
                raise WorkerError(
                    f"worker {self.name} exited with code "
                    f"{self.proc.returncode} before listening")
            if time.monotonic() > deadline:
                break
            ready.clear()
        if not found:
            self.terminate()
            raise WorkerError(
                f"worker {self.name} did not report a port within "
                f"{self.spawn_timeout:.0f}s")
        return found[0]

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def terminate(self, grace: float = 5.0) -> None:
        """SIGTERM (the daemon drains), then SIGKILL after ``grace``."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(grace)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(5.0)
        if self.proc.stdout is not None:
            try:
                self.proc.stdout.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# async links
# ----------------------------------------------------------------------

class _Conn:
    """One pipelined connection: FIFO futures matched to response lines."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.pending: Deque[asyncio.Future] = deque()
        self.closed = False
        self._read_task: Optional[asyncio.Task] = None

    async def open(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port, limit=RESPONSE_LIMIT)
        self._read_task = asyncio.get_event_loop().create_task(
            self._read_loop())

    def send(self, frame: bytes) -> "asyncio.Future[bytes]":
        """Queue one frame; the returned future resolves to the raw
        response line.  Never awaits: the transport buffer coalesces
        everything queued in one loop iteration into one send."""
        fut: asyncio.Future = asyncio.get_event_loop().create_future()
        if self.closed or self.writer is None:
            fut.set_exception(WorkerError(
                f"connection to {self.host}:{self.port} is closed"))
            return fut
        self.pending.append(fut)
        self.writer.write(frame)
        return fut

    async def _read_loop(self) -> None:
        exc: Optional[BaseException] = None
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                if self.pending:
                    fut = self.pending.popleft()
                    if not fut.done():
                        fut.set_result(line)
        except (asyncio.CancelledError, Exception) as err:  # noqa: BLE001
            exc = err
        finally:
            self.closed = True
            failure = WorkerError(
                f"connection to {self.host}:{self.port} lost"
                + (f": {exc}" if exc else ""))
            while self.pending:
                fut = self.pending.popleft()
                if not fut.done():
                    fut.set_exception(failure)

    async def close(self) -> None:
        self.closed = True
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self.writer is not None:
            try:
                self.writer.close()
                # wait_closed can hang on half-dead sockets; best effort.
                await asyncio.wait_for(self.writer.wait_closed(), 1.0)
            except (asyncio.TimeoutError, Exception):  # noqa: BLE001
                pass


class WorkerLink:
    """The coordinator's connection pool to one worker."""

    def __init__(self, name: str, host: str, port: int,
                 conns: int = 2, timeout: float = 300.0) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.conns = max(1, conns)
        self.timeout = timeout
        self.served = 0
        self.failures = 0
        self._pool: List[_Conn] = []
        self._rr = 0
        self._connect_lock: Optional[asyncio.Lock] = None

    def set_address(self, host: str, port: int) -> None:
        """Point the link at a respawned worker (old conns are stale;
        they fail on use and get replaced lazily)."""
        self.host = host
        self.port = port
        for conn in self._pool:
            conn.closed = True
        self._pool = []

    async def _get_conn(self) -> _Conn:
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        self._pool = [c for c in self._pool if not c.closed]
        if len(self._pool) < self.conns:
            async with self._connect_lock:
                self._pool = [c for c in self._pool if not c.closed]
                while len(self._pool) < self.conns:
                    conn = _Conn(self.host, self.port)
                    try:
                        await conn.open()
                    except OSError as exc:
                        raise WorkerError(
                            f"cannot connect to worker {self.name} at "
                            f"{self.host}:{self.port}: {exc}")
                    self._pool.append(conn)
        self._rr = (self._rr + 1) % len(self._pool)
        return self._pool[self._rr]

    async def call_raw(self, frame: bytes,
                       timeout: Optional[float] = None,
                       expect_id: Any = _NO_ID) -> bytes:
        """One frame out, one raw response line back.

        With ``expect_id``, the response must be a JSON object echoing
        that request id — anything else (truncated or garbled bytes, a
        misaligned frame) poisons the connection and raises
        :class:`WorkerError`, so corruption on the wire becomes a
        breaker-visible failure instead of bytes forwarded to a client.
        """
        conn = await self._get_conn()
        fut = conn.send(frame)
        try:
            line = await asyncio.wait_for(
                fut, timeout if timeout is not None else self.timeout)
        except asyncio.TimeoutError:
            # The FIFO would misalign the late response with the next
            # request; poison the whole connection instead.
            self.failures += 1
            await conn.close()
            raise WorkerTimeout(
                f"worker {self.name} did not answer within "
                f"{timeout if timeout is not None else self.timeout:.0f}s")
        except WorkerError:
            self.failures += 1
            raise
        if expect_id is not _NO_ID:
            try:
                obj = json.loads(line)
                echoed = obj.get("id") if isinstance(obj, dict) \
                    else _NO_ID
            except ValueError:
                echoed = _NO_ID
            if echoed != expect_id:
                self.failures += 1
                await conn.close()
                raise WorkerError(
                    f"worker {self.name} answered with a garbled or "
                    f"misaligned frame (expected id {expect_id!r})")
        self.served += 1
        return line

    async def close(self) -> None:
        pool, self._pool = self._pool, []
        for conn in pool:
            await conn.close()

    def stats(self) -> Dict[str, Any]:
        return {"address": f"{self.host}:{self.port}",
                "connections": len([c for c in self._pool
                                    if not c.closed]),
                "served": self.served, "failures": self.failures}

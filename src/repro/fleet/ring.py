"""Consistent-hash ring: cluster fingerprints to worker shards.

The shard key is the existing cluster payload fingerprint
(:func:`~repro.core.shipping.payload_fingerprint`) — content-addressed,
stable across runs and across hosts, and exactly the identity the
summary cache stores outcomes under, so "the worker that owns a key"
and "the worker whose caches are warm for that key" are the same
worker.

Standard construction: every node is hashed onto the unit circle at
``replicas`` points (virtual nodes smooth the key distribution), a key
routes to the first node point clockwise from the key's own hash, and
:meth:`preference` walks on around the circle — the hash-ring
successors that take over a tripped shard's key range.  Adding or
removing one node moves only the keys in its arcs (the minimal
disruption the fleet needs so a healed worker re-warms from the shared
disk cache instead of triggering a full reshuffle).

Hashing is SHA-1-free and deterministic: :func:`_point` uses SHA-256,
so every coordinator in every process agrees on the mapping with no
seed to coordinate.

:meth:`HashRing.assign` layers *bounded loads* on top (the standard
CHWBL refinement): given per-key weights it computes a placement in
which no node carries more than ``(1 + epsilon)`` times its fair share,
displacing overflow keys along the same successor order reroutes use.
The coordinator feeds it each file's cluster weights so the busiest
shard stays near 1/N even when arc variance or key-sampling noise
would skew a pure-hash placement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual-node count per worker.  Higher = smoother key distribution
#: (the fleet bench's throughput-scaling gate needs the busiest worker
#: to carry close to 1/N of the keys).  At 128 the arc-length variance
#: alone pushes the busiest of 4 shards to ~35% of the keyspace; 1024
#: brings it under ~28% while a 4-node ring is still only 4096 points
#: (~64 KiB) built once at startup with O(log n) lookups.
DEFAULT_REPLICAS = 1024


def _point(data: str) -> int:
    """Position of ``data`` on the ring (first 8 bytes of SHA-256)."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over named nodes."""

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Place ``node`` on the ring (idempotent)."""
        if node in self._nodes:
            return
        points = [_point(f"{node}#{i}") for i in range(self.replicas)]
        self._nodes[node] = points
        for p in points:
            idx = bisect.bisect(self._keys, p)
            self._keys.insert(idx, p)
            self._points.insert(idx, (p, node))

    def remove(self, node: str) -> None:
        """Take ``node`` off the ring (idempotent)."""
        points = self._nodes.pop(node, None)
        if points is None:
            return
        remaining = [(p, n) for p, n in self._points if n != node]
        self._points = remaining
        self._keys = [p for p, _ in remaining]

    # ------------------------------------------------------------------
    def node_for(self, key: str) -> Optional[str]:
        """The home node of ``key``: first node point clockwise from the
        key's hash.  ``None`` on an empty ring."""
        if not self._points:
            return None
        idx = bisect.bisect(self._keys, _point(key)) % len(self._points)
        return self._points[idx][1]

    def preference(self, key: str) -> List[str]:
        """All distinct nodes in ring order starting at the key's home —
        the reroute order when breakers are open: ``preference(k)[0]``
        is the home shard, ``[1]`` its first hash-ring successor, and so
        on.  Deterministic per key, so rerouted traffic for one key
        always lands on the same successor (cache locality survives the
        fault)."""
        if not self._points:
            return []
        start = bisect.bisect(self._keys, _point(key))
        seen: Dict[str, None] = {}
        n = len(self._points)
        for i in range(n):
            node = self._points[(start + i) % n][1]
            if node not in seen:
                seen[node] = None
                if len(seen) == len(self._nodes):
                    break
        return list(seen)

    def assign(self, weights: Dict[str, float],
               epsilon: float = 0.05) -> Dict[str, str]:
        """Bounded-load placement (consistent hashing with bounded
        loads): every key goes to the *first node in its*
        :meth:`preference` *order* whose accumulated weight stays within
        ``(1 + epsilon)`` times its fair share of the total; a key no
        node can take within the bound lands on the least-loaded node
        in its preference order.

        Pure arc-based homes leave the busiest of N shards well above
        1/N of the load (ring-arc variance plus key-sampling noise —
        with a few hundred cluster keys the busiest of 4 shards draws
        ~28% of the keyspace even at 1024 virtual nodes), which caps
        fleet throughput scaling at the busiest shard.  The bound trims
        exactly that tail while keeping the ring in charge: most keys
        stay on their arc home, displaced keys walk the same successor
        order reroutes use, and the placement is deterministic — keys
        are placed heaviest-first with the key itself as tie-break, no
        RNG — so every rebuild of the same file lands every cluster on
        the same worker.
        """
        if not self._nodes:
            return {}
        total = sum(weights.values())
        cap = (1.0 + epsilon) * total / len(self._nodes)
        load = {node: 0.0 for node in self._nodes}
        homes: Dict[str, str] = {}
        for key in sorted(weights, key=lambda k: (-weights[k], k)):
            w = weights[key]
            pref = self.preference(key)
            node = next(
                (n for n in pref if load[n] + w <= cap), None)
            if node is None:
                # min() is stable: ties resolve to the earliest node in
                # preference order, keeping the fallback deterministic.
                node = min(pref, key=lambda n: load[n])
            homes[key] = node
            load[node] += w
        return homes

    def shares(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each node is home to (diagnostics; the
        fleet status report surfaces it per file)."""
        out = {node: 0 for node in self._nodes}
        for key in keys:
            node = self.node_for(key)
            if node is not None:
                out[node] += 1
        return out

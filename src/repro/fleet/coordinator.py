"""The fleet coordinator: one asyncio front door, N worker daemons.

The PR-3 daemon already scales *within* one process: per-file locks,
an LRU of file states, a fingerprint-keyed cluster store.  The fleet
scales *across* processes with the same protocol end to end — a client
cannot tell a coordinator from a single daemon except by asking
(``ping`` answers ``role: coordinator``), and a healthy response is the
worker's bytes forwarded verbatim, which is how the fleet bench checks
bit-identity against a lone daemon.

Routing is by **cluster payload fingerprint**
(:func:`~repro.core.shipping.cluster_fingerprints`): the coordinator
parses and bootstraps each served file once — partitioning and
clustering only, never the expensive per-cluster FSCS — and maps every
pointer to the fingerprint of its primary cluster.  A ``points_to p``
lands on the consistent-hash home of *p's cluster key*, which is also
the worker whose summary cache is warm for that cluster, because the
fingerprint **is** the cache key.  Homes are refined per file with
bounded loads (:meth:`HashRing.assign`, weights = pointers per
cluster): no shard carries more than ``(1 + balance_epsilon)`` times
its fair share of a file's query traffic, so warm throughput scales
with the fleet instead of with the luckiest arc.  Whole-file queries
(diagnostics,
taint, leaks, deadlocks) route by a digest over all of the file's
fingerprints, so one worker owns each file's full-program passes.

Every worker is an *unmodified* daemon holding complete per-file state;
routing buys cache locality, not correctness, so any worker can answer
any query and rerouting is always sound.  The failure path:

* a worker failure (connect error, dropped connection, timeout) is
  recorded on that shard's :class:`~repro.core.resilience.CircuitBreaker`
  — the PR-5 pool-level fuse promoted to shard level with a
  ``reset_timeout`` so it can heal;
* while a breaker is open the shard's whole key range reroutes along
  the hash ring's successor order (``preference(key)[1:]``), and every
  rerouted answer is tagged with a ``fleet`` envelope
  (``rerouted: true``, the home shard it was moved off).  Tagged
  answers follow the resilience ladder's tagged-never-cached
  discipline: the envelope is attached on the way out and stored
  nowhere;
* the probe loop respawns dead spawned workers and sends one ping per
  ``reset_timeout`` window through half-open breakers; a success closes
  the breaker and the shard's key range snaps home, where the worker
  re-warms from the shared on-disk summary cache instead of recomputing
  the world.

Back-pressure is explicit: admission control
(:class:`~repro.fleet.admission.AdmissionController`) bounds global and
per-shard in-flight counts and rejects the excess with structured
``OVERLOADED`` errors — the front door never queues unboundedly and
never stalls a client silently.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core import BootstrapAnalyzer, CircuitBreaker, cluster_fingerprints
from ..core.queries import resolve_pointer
from ..errors import ReproError
from ..server import protocol
from ..server.protocol import PROTOCOL_VERSION, RequestError
from ..server.store import ServerConfig
from .admission import AdmissionController, AdmissionError
from .ring import DEFAULT_REPLICAS, HashRing
from .worker import LocalWorker, WorkerError, WorkerLink, parse_worker_addr

#: Methods the coordinator answers itself (no worker round-trip).
_LOCAL_METHODS = frozenset({"ping", "stats", "fleet_status", "shutdown"})

#: Which request parameter names the routing pointer per method; methods
#: absent here route by the whole file's key.
_POINTER_PARAM = {"points_to": "ptr", "alias": "p", "must_alias": "p"}


@dataclass
class FleetConfig:
    """Fleet-level knobs; ``server`` carries the per-worker analysis
    knobs (spawned workers are started with matching ``repro serve``
    flags, so every shard computes identical answers)."""

    #: How many local workers to spawn (ignored when ``worker_addrs``
    #: names externally managed daemons).
    workers: int = 2
    #: Externally managed workers as ``host:port`` strings.
    worker_addrs: List[str] = field(default_factory=list)
    replicas: int = DEFAULT_REPLICAS
    #: Bounded-load slack for :meth:`HashRing.assign`: no shard's
    #: cluster-weight share of a file exceeds ``(1 + epsilon) / N``.
    balance_epsilon: float = 0.05
    conns_per_worker: int = 2
    max_inflight: int = 1024
    max_per_shard: int = 256
    #: Shard breaker: consecutive failures to trip, seconds until the
    #: open breaker turns half-open and admits a heal probe.
    breaker_threshold: int = 3
    breaker_reset: float = 2.0
    worker_timeout: float = 300.0
    probe_interval: float = 0.25
    #: Respawn dead spawned workers (healing); addressed workers are
    #: never respawned, only probed.
    respawn: bool = True
    #: Attach the fleet envelope to every response, not only rerouted
    #: ones (diagnostics; defeats the verbatim-forward fast path).
    envelope_all: bool = False
    spawn_timeout: float = 60.0
    drain_grace: float = 10.0
    server: ServerConfig = field(default_factory=ServerConfig)

    def serve_args(self) -> List[str]:
        """``repro serve`` flags reproducing ``self.server`` in a
        spawned worker."""
        cfg = self.server
        args = ["--entry", cfg.entry, "--threshold", str(cfg.threshold),
                "--parts", str(cfg.parts), "--backend", cfg.backend,
                "--scheduler", cfg.scheduler,
                "--max-files", str(cfg.max_files),
                "--max-clusters", str(cfg.max_clusters),
                "--max-request-bytes", str(cfg.max_request_bytes),
                "--retries", str(cfg.retries)]
        if cfg.oneflow:
            args.append("--oneflow")
        if cfg.jobs is not None:
            args += ["--jobs", str(cfg.jobs)]
        if cfg.cache_dir is not None:
            args += ["--cache", cfg.cache_dir]
        if cfg.fscs_budget is not None:
            args += ["--fscs-budget", str(cfg.fscs_budget)]
        if cfg.cluster_timeout is not None:
            args += ["--cluster-timeout", str(cfg.cluster_timeout)]
        if cfg.degrade:
            args.append("--degrade")
        if not cfg.watch:
            args.append("--no-watch")
        return args


class _Shard:
    """One worker as the coordinator sees it: link + breaker (+ the
    subprocess handle when the coordinator spawned it)."""

    def __init__(self, name: str, link: WorkerLink,
                 breaker: CircuitBreaker,
                 local: Optional[LocalWorker] = None) -> None:
        self.name = name
        self.link = link
        self.breaker = breaker
        self.local = local
        self.rerouted_in = 0   # answers served here for other shards
        self.rerouted_out = 0  # home traffic served elsewhere
        self.heals = 0

    def status(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "state": self.breaker.state(),
            "trips": self.breaker.trips,
            "heals": self.heals,
            "rerouted_in": self.rerouted_in,
            "rerouted_out": self.rerouted_out,
            "link": self.link.stats(),
        }
        if self.local is not None:
            out["spawned"] = True
            out["pid"] = self.local.pid
            out["alive"] = self.local.alive
            out["spawns"] = self.local.spawns
        else:
            out["spawned"] = False
        return out


class RoutingState:
    """Per-file shard keys: the cheap front half of the bootstrap.

    Parsing + Steensgaard + Andersen clustering cost a small fraction
    of the per-cluster FSCS the workers run, and yield exactly the
    payload fingerprints ``analyze_all`` would compute — so the
    coordinator knows every cluster's cache identity without ever
    paying for its analysis, and the first query for a cluster pays the
    FSCS once, on the key's home worker.
    """

    def __init__(self, path: str, stat: os.stat_result, program: Any,
                 fingerprints: List[str],
                 pointer_key: Dict[str, str]) -> None:
        self.path = path
        self.mtime_ns = stat.st_mtime_ns
        self.size = stat.st_size
        self.program = program
        self.fingerprints = fingerprints
        self.pointer_key = pointer_key
        self.file_key = "file:" + hashlib.sha256(
            "\n".join(fingerprints).encode("utf-8")).hexdigest()
        #: key → home worker, filled in by :meth:`assign_homes` once
        #: the coordinator's ring is known; empty means pure ring homes.
        self.homes: Dict[str, str] = {}

    @classmethod
    def build(cls, path: str, config: ServerConfig) -> "RoutingState":
        from ..frontend import parse_program
        st = os.stat(path)
        with open(path, "r") as handle:
            source = handle.read()
        program = parse_program(source, entry=config.entry, path=path)
        result = BootstrapAnalyzer(program,
                                   config.bootstrap_config()).run()
        fps = cluster_fingerprints(
            program, result.clusters, result.callgraph,
            max_cond_atoms=config.max_cond_atoms,
            budget=config.fscs_budget)
        pointer_key: Dict[str, str] = {}
        for cluster, fp in zip(result.clusters, fps):
            for var in cluster.members:
                pointer_key.setdefault(str(var), fp)
        return cls(path, st, program, fps, pointer_key)

    def assign_homes(self, ring: HashRing, epsilon: float) -> None:
        """Balance this file's cluster keys over ``ring`` with bounded
        loads.  A key's weight is how many of the file's pointers route
        through it — exactly the per-key query load — so the busiest
        shard's *traffic* share is what the bound caps, not just its
        key count.  Deterministic: rebuilding the same file recreates
        the same placement."""
        weights: Dict[str, float] = {fp: 0.0 for fp in self.fingerprints}
        for fp in self.pointer_key.values():
            weights[fp] = weights.get(fp, 0.0) + 1.0
        self.homes = ring.assign(weights, epsilon=epsilon)
        self.homes.setdefault(self.file_key,
                              ring.node_for(self.file_key) or "")

    def stale(self) -> bool:
        try:
            st = os.stat(self.path)
        except OSError:
            return True
        return (st.st_mtime_ns != self.mtime_ns
                or st.st_size != self.size)

    def key_for_pointer(self, name: str) -> Optional[str]:
        try:
            var = resolve_pointer(self.program, name)
        except LookupError:
            return None
        return self.pointer_key.get(str(var))


class FleetCoordinator:
    """Route fleet traffic; own the local workers' lifecycle."""

    def __init__(self, config: Optional[FleetConfig] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 socket_path: Optional[str] = None) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.config = config or FleetConfig()
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.ring = HashRing(replicas=self.config.replicas)
        self.shards: Dict[str, _Shard] = {}
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_per_shard=self.config.max_per_shard)
        self.started = time.time()
        self.reroutes = 0
        self.respawns = 0
        self._errors = 0
        self._method_count: Dict[str, int] = {}
        self._routing: "OrderedDict[str, RoutingState]" = OrderedDict()
        self._routing_locks: Dict[str, asyncio.Lock] = {}
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    def serve_forever(self, install_signal_handlers: bool = True,
                      ready: Optional[threading.Event] = None) -> None:
        """Spawn the workers, serve until shut down, then drain.

        ``ready`` (for in-process embedding: tests, the bench) is set
        once the front door is bound — ``self.port`` resolves the
        kernel-chosen port first.
        """
        asyncio.run(self._main(install_signal_handlers, ready))

    def request_shutdown(self) -> None:
        """Stop and drain; safe from any thread or a signal handler."""
        self._draining = True
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _main(self, install_signal_handlers: bool,
                    ready: Optional[threading.Event]) -> None:
        self._loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        if install_signal_handlers:
            import signal
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    break
        await self._start_workers()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path)
        else:
            server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port)
            self.port = server.sockets[0].getsockname()[1]
        probe_task = self._loop.create_task(self._probe_loop())
        try:
            if ready is not None:
                ready.set()
            await self._stop.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            await self._wait_for_drain()
            probe_task.cancel()
            try:
                await probe_task
            except asyncio.CancelledError:
                pass
            await self._stop_workers()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass

    async def _wait_for_drain(self) -> None:
        deadline = time.monotonic() + self.config.drain_grace
        while self.admission.inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)

    async def _start_workers(self) -> None:
        conf = self.config
        if conf.worker_addrs:
            for i, arg in enumerate(conf.worker_addrs):
                host, port = parse_worker_addr(arg)
                self._add_shard(f"w{i}", host, port, local=None)
            return
        if conf.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        locals_ = [LocalWorker(f"w{i}", serve_args=conf.serve_args(),
                               spawn_timeout=conf.spawn_timeout)
                   for i in range(conf.workers)]
        loop = asyncio.get_event_loop()
        addrs = await asyncio.gather(*[
            loop.run_in_executor(None, w.spawn) for w in locals_])
        for worker, (host, port) in zip(locals_, addrs):
            self._add_shard(worker.name, host, port, local=worker)

    def _add_shard(self, name: str, host: str, port: int,
                   local: Optional[LocalWorker]) -> None:
        link = WorkerLink(name, host, port,
                          conns=self.config.conns_per_worker,
                          timeout=self.config.worker_timeout)
        breaker = CircuitBreaker(self.config.breaker_threshold,
                                 reset_timeout=self.config.breaker_reset)
        self.shards[name] = _Shard(name, link, breaker, local=local)
        self.ring.add(name)

    async def _stop_workers(self) -> None:
        loop = asyncio.get_event_loop()
        for shard in self.shards.values():
            await shard.link.close()
        await asyncio.gather(*[
            loop.run_in_executor(None, shard.local.terminate)
            for shard in self.shards.values() if shard.local is not None])

    # ------------------------------------------------------------------
    # healing
    # ------------------------------------------------------------------
    async def _probe_loop(self) -> None:
        """Respawn dead spawned workers; ping through half-open
        breakers.  A probe success closes the breaker — the shard's key
        range snaps back home and re-warms from the shared disk cache."""
        ping = protocol.encode({"id": "fleet-probe", "method": "ping",
                                "v": PROTOCOL_VERSION})
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.config.probe_interval)
            for shard in self.shards.values():
                if not shard.breaker.is_open:
                    continue
                local = shard.local
                if local is not None and not local.alive \
                        and self.config.respawn:
                    try:
                        host, port = await loop.run_in_executor(
                            None, local.spawn)
                    except WorkerError:
                        shard.breaker.record_failure()
                        continue
                    shard.link.set_address(host, port)
                    self.respawns += 1
                if not shard.breaker.allow_probe():
                    continue
                try:
                    await shard.link.call_raw(ping, timeout=5.0)
                except WorkerError:
                    shard.breaker.record_failure()
                else:
                    shard.breaker.record_success()
                    shard.heals += 1

    # ------------------------------------------------------------------
    # front door
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One client connection: the daemon's line loop, async.

        Requests on one connection are handled in order (same semantics
        as the daemon's per-connection thread); concurrency comes from
        concurrent connections.  Oversized lines get a structured error
        and the stream resyncs at the next newline, exactly like the
        threaded daemon.
        """
        max_bytes = self.config.server.max_request_bytes
        buf = b""
        discarding = False
        too_large = protocol.encode(protocol.err(
            None, protocol.REQUEST_TOO_LARGE,
            f"request line exceeds {max_bytes} bytes",
            {"max_request_bytes": max_bytes}))
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if discarding:
                        discarding = False
                        continue
                    if not line.strip():
                        continue
                    if len(line) > max_bytes:
                        writer.write(too_large)
                        await writer.drain()
                        continue
                    writer.write(await self.dispatch_line(line))
                    await writer.drain()
                if not discarding and len(buf) > max_bytes:
                    writer.write(too_large)
                    await writer.drain()
                    buf = b""
                    discarding = True
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            # Loop teardown mid-connection (shutdown path): end the
            # handler quietly, the front server is already closed.
            return
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    async def dispatch_line(self, line: bytes) -> bytes:
        """One wire frame in, one wire frame out (the coordinator's
        analogue of ``AliasServer.handle_line``)."""
        request_id: Any = None
        try:
            request = protocol.decode(line)
            request_id = request.get("id")
            request_id, method, params = \
                protocol.validate_request(request)
        except RequestError as exc:
            self._errors += 1
            return protocol.encode(protocol.err(
                request_id, exc.code, str(exc), exc.data))
        self._method_count[method] = \
            self._method_count.get(method, 0) + 1
        if self._draining and method not in ("stats", "fleet_status"):
            self._errors += 1
            return protocol.encode(protocol.err(
                request_id, protocol.SHUTTING_DOWN,
                "coordinator is shutting down"))
        if method in _LOCAL_METHODS:
            return await self._handle_local(request_id, method)
        return await self._route(request, request_id, method, params)

    # ------------------------------------------------------------------
    # local methods
    # ------------------------------------------------------------------
    async def _handle_local(self, request_id: Any, method: str) -> bytes:
        if method == "ping":
            result: Any = {"pong": True, "role": "coordinator",
                           "protocol": PROTOCOL_VERSION,
                           "pid": os.getpid(),
                           "workers": len(self.shards)}
        elif method == "fleet_status":
            result = self.fleet_status()
        elif method == "stats":
            result = await self._aggregate_stats()
        else:  # shutdown
            self.request_shutdown()
            result = {"shutting_down": True}
        return protocol.encode(protocol.ok(request_id, result))

    def fleet_status(self) -> Dict[str, Any]:
        files = {}
        for path, rs in self._routing.items():
            shares = {node: 0 for node in self.ring.nodes()}
            for fp in rs.fingerprints:
                node = rs.homes.get(fp) or self.ring.node_for(fp)
                if node:
                    shares[node] += 1
            files[path] = {
                "clusters": len(rs.fingerprints),
                "file_key_home": rs.homes.get(rs.file_key)
                or self.ring.node_for(rs.file_key),
                "shares": shares,
            }
        return {
            "role": "coordinator",
            "protocol": PROTOCOL_VERSION,
            "address": self.address,
            "draining": self._draining,
            "uptime_seconds": time.time() - self.started,
            "ring": {"nodes": self.ring.nodes(),
                     "replicas": self.ring.replicas},
            "workers": {name: shard.status()
                        for name, shard in sorted(self.shards.items())},
            "admission": self.admission.stats(),
            "requests": dict(sorted(self._method_count.items())),
            "errors": self._errors,
            "reroutes": self.reroutes,
            "respawns": self.respawns,
            "files": files,
        }

    async def _aggregate_stats(self) -> Dict[str, Any]:
        async def one(shard: _Shard) -> Tuple[str, Any]:
            frame = protocol.encode({"id": "fleet-stats",
                                     "method": "stats",
                                     "v": PROTOCOL_VERSION})
            try:
                raw = await shard.link.call_raw(frame, timeout=30.0)
                return shard.name, protocol.decode(raw).get("result")
            except (WorkerError, RequestError) as exc:
                return shard.name, {"error": str(exc)}

        pairs = await asyncio.gather(
            *[one(s) for s in self.shards.values()])
        return {
            "role": "coordinator",
            "protocol": PROTOCOL_VERSION,
            "coordinator": {
                "uptime_seconds": time.time() - self.started,
                "requests": dict(sorted(self._method_count.items())),
                "errors": self._errors,
                "reroutes": self.reroutes,
                "respawns": self.respawns,
                "admission": self.admission.stats(),
            },
            "workers": dict(sorted(pairs)),
        }

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _routing_state(self, path: str) -> Optional[RoutingState]:
        """The (possibly rebuilt) routing state for ``path``; ``None``
        when the file cannot be parsed — the request still routes (by a
        path-derived key) so the *worker* produces the same structured
        error a single daemon would."""
        lock = self._routing_locks.setdefault(path, asyncio.Lock())
        async with lock:
            rs = self._routing.get(path)
            if rs is not None and not rs.stale():
                self._routing.move_to_end(path)
                return rs
            loop = asyncio.get_event_loop()
            try:
                rs = await loop.run_in_executor(
                    None, RoutingState.build, path,
                    self.config.server)
            except (ReproError, OSError, RequestError):
                self._routing.pop(path, None)
                return None
            rs.assign_homes(self.ring, self.config.balance_epsilon)
            self._routing[path] = rs
            self._routing.move_to_end(path)
            while len(self._routing) > self.config.server.max_files:
                dropped, _ = self._routing.popitem(last=False)
                self._routing_locks.pop(dropped, None)
            return rs

    async def _shard_key(self, method: str,
                         params: Dict[str, Any]) -> Tuple[str,
                                                          Optional[str]]:
        """``(key, home)`` for a request: ``home`` is the bounded-load
        placement's pick when the key belongs to a routed file, ``None``
        when only the pure ring home applies (fileless or unparseable
        requests)."""
        file_param = params.get("file")
        if not isinstance(file_param, str) or not file_param:
            # Fileless or malformed: deterministic key so the worker's
            # own validation error is served consistently.
            return f"method:{method}", None
        path = os.path.abspath(file_param)
        if method == "invalidate":
            # Drop our map too — the file's cluster keys are about to
            # change; rebuilt lazily on the next routed query.
            self._routing.pop(path, None)
        rs = await self._routing_state(path)
        if rs is None:
            return "path:" + path, None
        pointer_param = _POINTER_PARAM.get(method)
        if pointer_param is not None:
            name = params.get(pointer_param)
            if isinstance(name, str) and name:
                key = rs.key_for_pointer(name)
                if key is not None:
                    return key, rs.homes.get(key)
        return rs.file_key, rs.homes.get(rs.file_key)

    async def _route(self, request: Dict[str, Any], request_id: Any,
                     method: str, params: Dict[str, Any]) -> bytes:
        key, placed = await self._shard_key(method, params)
        pref = self.ring.preference(key)
        if placed is not None and placed in self.shards \
                and pref and pref[0] != placed:
            # Bounded-load placement moved this key off its arc home;
            # reroutes still walk the ring's successor order.
            pref = [placed] + [n for n in pref if n != placed]
        home = pref[0]
        try:
            self.admission.admit(home)
        except AdmissionError as exc:
            self._errors += 1
            return protocol.encode(protocol.err(
                request_id, exc.code, str(exc), exc.data))
        stamped = dict(request)
        stamped["v"] = PROTOCOL_VERSION
        frame = protocol.encode(stamped)
        last_error: Optional[Exception] = None
        try:
            for i, name in enumerate(pref):
                shard = self.shards[name]
                if shard.breaker.is_open:
                    last_error = last_error or WorkerError(
                        f"shard {name} circuit breaker is open")
                    continue
                try:
                    raw = await shard.link.call_raw(frame)
                except WorkerError as exc:
                    shard.breaker.record_failure()
                    last_error = exc
                    continue
                shard.breaker.record_success()
                if i == 0 and not self.config.envelope_all:
                    # Fast path: the worker's bytes, verbatim.
                    return raw
                if i > 0:
                    self.reroutes += 1
                    shard.rerouted_in += 1
                    self.shards[home].rerouted_out += 1
                env = protocol.envelope(name, key=key, rerouted=i > 0,
                                        home=home if i > 0 else None)
                response = protocol.decode(raw)
                return protocol.encode(
                    protocol.with_envelope(response, env))
            self._errors += 1
            return protocol.encode(protocol.err(
                request_id, protocol.SHARD_UNAVAILABLE,
                f"no worker can serve shard key {key[:16]}…: "
                f"{last_error}",
                {"key": key, "tried": pref,
                 "last_error": str(last_error)}))
        finally:
            self.admission.release(home)

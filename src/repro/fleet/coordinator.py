"""The fleet coordinator: one asyncio front door, N worker daemons.

The PR-3 daemon already scales *within* one process: per-file locks,
an LRU of file states, a fingerprint-keyed cluster store.  The fleet
scales *across* processes with the same protocol end to end — a client
cannot tell a coordinator from a single daemon except by asking
(``ping`` answers ``role: coordinator``), and a healthy response is the
worker's bytes forwarded verbatim, which is how the fleet bench checks
bit-identity against a lone daemon.

Routing is by **cluster payload fingerprint**
(:func:`~repro.core.shipping.cluster_fingerprints`): the coordinator
parses and bootstraps each served file once — partitioning and
clustering only, never the expensive per-cluster FSCS — and maps every
pointer to the fingerprint of its primary cluster.  A ``points_to p``
lands on the consistent-hash home of *p's cluster key*, which is also
the worker whose summary cache is warm for that cluster, because the
fingerprint **is** the cache key.  Homes are refined per file with
bounded loads (:meth:`HashRing.assign`, weights = pointers per
cluster): no shard carries more than ``(1 + balance_epsilon)`` times
its fair share of a file's query traffic, so warm throughput scales
with the fleet instead of with the luckiest arc.  Whole-file queries
(diagnostics,
taint, leaks, deadlocks) route by a digest over all of the file's
fingerprints, so one worker owns each file's full-program passes.

Every worker is an *unmodified* daemon holding complete per-file state;
routing buys cache locality, not correctness, so any worker can answer
any query and rerouting is always sound.  The failure path:

* a worker failure (connect error, dropped connection, timeout) is
  recorded on that shard's :class:`~repro.core.resilience.CircuitBreaker`
  — the PR-5 pool-level fuse promoted to shard level with a
  ``reset_timeout`` so it can heal;
* while a breaker is open the shard's whole key range reroutes along
  the hash ring's successor order (``preference(key)[1:]``), and every
  rerouted answer is tagged with a ``fleet`` envelope
  (``rerouted: true``, the home shard it was moved off).  Tagged
  answers follow the resilience ladder's tagged-never-cached
  discipline: the envelope is attached on the way out and stored
  nowhere;
* the probe loop respawns dead spawned workers and sends one ping per
  ``reset_timeout`` window through half-open breakers; a success closes
  the breaker and the shard's key range snaps home, where the worker
  re-warms from the shared on-disk summary cache instead of recomputing
  the world.

Back-pressure is explicit: admission control
(:class:`~repro.fleet.admission.AdmissionController`) bounds global and
per-shard in-flight counts and rejects the excess with structured
``OVERLOADED`` errors — the front door never queues unboundedly and
never stalls a client silently.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..core import BootstrapAnalyzer, CircuitBreaker, cluster_fingerprints
from ..core.queries import resolve_pointer
from ..errors import ReproError
from ..server import protocol
from ..server.protocol import PROTOCOL_VERSION, RequestError
from ..server.store import ServerConfig
from .admission import AdmissionController, AdmissionError
from .journal import CoordinatorJournal
from .respawn import RespawnGovernor
from .ring import DEFAULT_REPLICAS, HashRing
from .worker import LocalWorker, WorkerError, WorkerLink, parse_worker_addr

#: Methods the coordinator answers itself (no worker round-trip).
_LOCAL_METHODS = frozenset({"ping", "stats", "fleet_status", "shutdown"})

#: Which request parameter names the routing pointer per method; methods
#: absent here route by the whole file's key.
_POINTER_PARAM = {"points_to": "ptr", "alias": "p", "must_alias": "p"}


@dataclass
class FleetConfig:
    """Fleet-level knobs; ``server`` carries the per-worker analysis
    knobs (spawned workers are started with matching ``repro serve``
    flags, so every shard computes identical answers)."""

    #: How many local workers to spawn (ignored when ``worker_addrs``
    #: names externally managed daemons).
    workers: int = 2
    #: Externally managed workers as ``host:port`` strings.
    worker_addrs: List[str] = field(default_factory=list)
    replicas: int = DEFAULT_REPLICAS
    #: Bounded-load slack for :meth:`HashRing.assign`: no shard's
    #: cluster-weight share of a file exceeds ``(1 + epsilon) / N``.
    balance_epsilon: float = 0.05
    conns_per_worker: int = 2
    max_inflight: int = 1024
    max_per_shard: int = 256
    #: Shard breaker: consecutive failures to trip, seconds until the
    #: open breaker turns half-open and admits a heal probe.
    breaker_threshold: int = 3
    breaker_reset: float = 2.0
    worker_timeout: float = 300.0
    probe_interval: float = 0.25
    #: Respawn dead spawned workers (healing); addressed workers are
    #: never respawned, only probed.
    respawn: bool = True
    #: Respawn pacing: consecutive deaths back off exponentially from
    #: ``respawn_backoff`` up to ``respawn_max_backoff``; a worker that
    #: dies ``crash_loop_threshold`` times inside ``crash_loop_window``
    #: seconds is parked (never respawned again) with its shards
    #: rerouted, instead of fork/exec-ing in a hot loop.
    respawn_backoff: float = 0.5
    respawn_max_backoff: float = 30.0
    crash_loop_threshold: int = 5
    crash_loop_window: float = 30.0
    #: Hedged queries: when the home shard sits on a warm query past
    #: the p95-derived hedge delay, duplicate it to the ring successor
    #: — first answer wins, the loser is cancelled, and the winner is
    #: tagged ``hedged`` in the envelope.  Hedges are rate-capped to
    #: ``hedge_max_fraction`` of hedge-eligible traffic; the delay is
    #: the p95 of the last ``hedge_window`` primary latencies (at least
    #: ``hedge_min_delay``) once ``hedge_min_observations`` are in.
    hedge: bool = False
    hedge_max_fraction: float = 0.05
    hedge_min_delay: float = 0.05
    hedge_window: int = 128
    hedge_min_observations: int = 20
    #: Crash-safe coordinator state: a directory for the checksummed
    #: journal + snapshot (``None`` keeps the coordinator memory-only).
    #: Served files and observed per-key query weights survive a
    #: coordinator kill, so a restart rebuilds its routing warm.
    journal_dir: Optional[str] = None
    journal_compact_every: int = 256
    #: Journal the observed weights of a file every this many queries.
    weights_flush_every: int = 32
    #: Attach the fleet envelope to every response, not only rerouted
    #: ones (diagnostics; defeats the verbatim-forward fast path).
    envelope_all: bool = False
    spawn_timeout: float = 60.0
    drain_grace: float = 10.0
    server: ServerConfig = field(default_factory=ServerConfig)

    def serve_args(self) -> List[str]:
        """``repro serve`` flags reproducing ``self.server`` in a
        spawned worker."""
        cfg = self.server
        args = ["--entry", cfg.entry, "--threshold", str(cfg.threshold),
                "--parts", str(cfg.parts), "--backend", cfg.backend,
                "--scheduler", cfg.scheduler,
                "--max-files", str(cfg.max_files),
                "--max-clusters", str(cfg.max_clusters),
                "--max-request-bytes", str(cfg.max_request_bytes),
                "--retries", str(cfg.retries)]
        if cfg.oneflow:
            args.append("--oneflow")
        if cfg.jobs is not None:
            args += ["--jobs", str(cfg.jobs)]
        if cfg.cache_dir is not None:
            args += ["--cache", cfg.cache_dir]
        if cfg.fscs_budget is not None:
            args += ["--fscs-budget", str(cfg.fscs_budget)]
        if cfg.cluster_timeout is not None:
            args += ["--cluster-timeout", str(cfg.cluster_timeout)]
        if cfg.degrade:
            args.append("--degrade")
        if not cfg.watch:
            args.append("--no-watch")
        return args


class _Shard:
    """One worker as the coordinator sees it: link + breaker (+ the
    subprocess handle when the coordinator spawned it)."""

    def __init__(self, name: str, link: WorkerLink,
                 breaker: CircuitBreaker,
                 local: Optional[LocalWorker] = None) -> None:
        self.name = name
        self.link = link
        self.breaker = breaker
        self.local = local
        self.rerouted_in = 0   # answers served here for other shards
        self.rerouted_out = 0  # home traffic served elsewhere
        self.heals = 0

    def status(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "state": self.breaker.state(),
            "trips": self.breaker.trips,
            "heals": self.heals,
            "rerouted_in": self.rerouted_in,
            "rerouted_out": self.rerouted_out,
            "link": self.link.stats(),
        }
        if self.local is not None:
            out["spawned"] = True
            out["pid"] = self.local.pid
            out["alive"] = self.local.alive
            out["spawns"] = self.local.spawns
        else:
            out["spawned"] = False
        return out


class RoutingState:
    """Per-file shard keys: the cheap front half of the bootstrap.

    Parsing + Steensgaard + Andersen clustering cost a small fraction
    of the per-cluster FSCS the workers run, and yield exactly the
    payload fingerprints ``analyze_all`` would compute — so the
    coordinator knows every cluster's cache identity without ever
    paying for its analysis, and the first query for a cluster pays the
    FSCS once, on the key's home worker.
    """

    def __init__(self, path: str, stat: os.stat_result, program: Any,
                 fingerprints: List[str],
                 pointer_key: Dict[str, str]) -> None:
        self.path = path
        self.mtime_ns = stat.st_mtime_ns
        self.size = stat.st_size
        self.program = program
        self.fingerprints = fingerprints
        self.pointer_key = pointer_key
        self.file_key = "file:" + hashlib.sha256(
            "\n".join(fingerprints).encode("utf-8")).hexdigest()
        #: key → home worker, filled in by :meth:`assign_homes` once
        #: the coordinator's ring is known; empty means pure ring homes.
        self.homes: Dict[str, str] = {}

    @classmethod
    def build(cls, path: str, config: ServerConfig) -> "RoutingState":
        from ..frontend import parse_program
        st = os.stat(path)
        with open(path, "r") as handle:
            source = handle.read()
        program = parse_program(source, entry=config.entry, path=path)
        result = BootstrapAnalyzer(program,
                                   config.bootstrap_config()).run()
        fps = cluster_fingerprints(
            program, result.clusters, result.callgraph,
            max_cond_atoms=config.max_cond_atoms,
            budget=config.fscs_budget)
        pointer_key: Dict[str, str] = {}
        for cluster, fp in zip(result.clusters, fps):
            for var in cluster.members:
                pointer_key.setdefault(str(var), fp)
        return cls(path, st, program, fps, pointer_key)

    def assign_homes(self, ring: HashRing, epsilon: float,
                     observed: Optional[Dict[str, int]] = None) -> None:
        """Balance this file's cluster keys over ``ring`` with bounded
        loads.  A key's weight is how many of the file's pointers route
        through it — exactly the per-key query load — plus any
        ``observed`` per-key query counts (live counters, or the
        journal's recovered weights after a coordinator restart), which
        refine the static estimate with how traffic actually skews.
        Deterministic: rebuilding the same file with the same observed
        counts recreates the same placement."""
        weights: Dict[str, float] = {fp: 0.0 for fp in self.fingerprints}
        for fp in self.pointer_key.values():
            weights[fp] = weights.get(fp, 0.0) + 1.0
        if observed:
            for fp, count in observed.items():
                if fp in weights:
                    weights[fp] += float(count)
        self.homes = ring.assign(weights, epsilon=epsilon)
        self.homes.setdefault(self.file_key,
                              ring.node_for(self.file_key) or "")

    def stale(self) -> bool:
        try:
            st = os.stat(self.path)
        except OSError:
            return True
        return (st.st_mtime_ns != self.mtime_ns
                or st.st_size != self.size)

    def key_for_pointer(self, name: str) -> Optional[str]:
        try:
            var = resolve_pointer(self.program, name)
        except LookupError:
            return None
        return self.pointer_key.get(str(var))


class FleetCoordinator:
    """Route fleet traffic; own the local workers' lifecycle."""

    def __init__(self, config: Optional[FleetConfig] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 socket_path: Optional[str] = None) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.config = config or FleetConfig()
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.ring = HashRing(replicas=self.config.replicas)
        self.shards: Dict[str, _Shard] = {}
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_per_shard=self.config.max_per_shard)
        self.started = time.time()
        self.reroutes = 0
        self.respawns = 0
        self.deadline_sheds = 0
        self.hedges = 0
        self.hedges_won = 0
        self._hedge_eligible = 0
        self._latencies: Deque[float] = deque(
            maxlen=self.config.hedge_window)
        self.governor = RespawnGovernor(
            backoff=self.config.respawn_backoff,
            max_backoff=self.config.respawn_max_backoff,
            window=self.config.crash_loop_window,
            threshold=self.config.crash_loop_threshold)
        self.journal: Optional[CoordinatorJournal] = None
        if self.config.journal_dir is not None:
            self.journal = CoordinatorJournal(
                self.config.journal_dir,
                compact_every=self.config.journal_compact_every)
        self.recovered: Dict[str, Any] = {}
        self._errors = 0
        self._method_count: Dict[str, int] = {}
        self._routing: "OrderedDict[str, RoutingState]" = OrderedDict()
        self._routing_locks: Dict[str, asyncio.Lock] = {}
        #: path -> cluster key -> queries observed (journaled so a
        #: restarted coordinator re-places keys by real traffic).
        self._query_counts: Dict[str, Dict[str, int]] = {}
        self._weight_dirty: Dict[str, int] = {}
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    def serve_forever(self, install_signal_handlers: bool = True,
                      ready: Optional[threading.Event] = None) -> None:
        """Spawn the workers, serve until shut down, then drain.

        ``ready`` (for in-process embedding: tests, the bench) is set
        once the front door is bound — ``self.port`` resolves the
        kernel-chosen port first.
        """
        asyncio.run(self._main(install_signal_handlers, ready))

    def request_shutdown(self) -> None:
        """Stop and drain; safe from any thread or a signal handler."""
        self._draining = True
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _main(self, install_signal_handlers: bool,
                    ready: Optional[threading.Event]) -> None:
        self._loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        if install_signal_handlers:
            import signal
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    break
        await self._start_workers()
        await self._recover_from_journal()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path)
        else:
            server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port)
            self.port = server.sockets[0].getsockname()[1]
        probe_task = self._loop.create_task(self._probe_loop())
        try:
            if ready is not None:
                ready.set()
            await self._stop.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            await self._wait_for_drain()
            probe_task.cancel()
            try:
                await probe_task
            except asyncio.CancelledError:
                pass
            await self._stop_workers()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass

    async def _recover_from_journal(self) -> None:
        """Warm restart: replay the journal's served files and observed
        weights, then rebuild each file's routing state (best effort —
        a file deleted while the coordinator was down just drops out)
        before the front door opens, so the first post-crash query
        routes exactly where the pre-crash coordinator would have sent
        it."""
        if self.journal is None:
            return
        t0 = time.perf_counter()
        files, weights = self.journal.load()
        self._query_counts = {path: dict(counts)
                              for path, counts in weights.items()}
        rebuilt = 0
        for path in files:
            if await self._routing_state(path) is not None:
                rebuilt += 1
        self.recovered = {
            "files": len(files),
            "rebuilt": rebuilt,
            "weighted_keys": sum(len(c) for c in weights.values()),
            "seconds": time.perf_counter() - t0,
        }

    async def _wait_for_drain(self) -> None:
        deadline = time.monotonic() + self.config.drain_grace
        while self.admission.inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)

    async def _start_workers(self) -> None:
        conf = self.config
        if conf.worker_addrs:
            for i, arg in enumerate(conf.worker_addrs):
                host, port = parse_worker_addr(arg)
                self._add_shard(f"w{i}", host, port, local=None)
            return
        if conf.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        locals_ = [LocalWorker(f"w{i}", serve_args=conf.serve_args(),
                               spawn_timeout=conf.spawn_timeout)
                   for i in range(conf.workers)]
        loop = asyncio.get_event_loop()
        addrs = await asyncio.gather(*[
            loop.run_in_executor(None, w.spawn) for w in locals_])
        for worker, (host, port) in zip(locals_, addrs):
            self._add_shard(worker.name, host, port, local=worker)

    def _add_shard(self, name: str, host: str, port: int,
                   local: Optional[LocalWorker]) -> None:
        link = WorkerLink(name, host, port,
                          conns=self.config.conns_per_worker,
                          timeout=self.config.worker_timeout)
        breaker = CircuitBreaker(self.config.breaker_threshold,
                                 reset_timeout=self.config.breaker_reset)
        self.shards[name] = _Shard(name, link, breaker, local=local)
        self.ring.add(name)

    async def _stop_workers(self) -> None:
        loop = asyncio.get_event_loop()
        for shard in self.shards.values():
            await shard.link.close()
        await asyncio.gather(*[
            loop.run_in_executor(None, shard.local.terminate)
            for shard in self.shards.values() if shard.local is not None])

    # ------------------------------------------------------------------
    # healing
    # ------------------------------------------------------------------
    async def _probe_loop(self) -> None:
        """Respawn dead spawned workers — paced by the
        :class:`RespawnGovernor`'s backoff and crash-loop breaker — and
        ping through half-open breakers.  A probe success closes the
        breaker: the shard's key range snaps back home and re-warms
        from the shared disk cache.  A parked worker is neither
        respawned nor probed; its keys stay rerouted."""
        ping = protocol.encode({"id": "fleet-probe", "method": "ping",
                                "v": PROTOCOL_VERSION})
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.config.probe_interval)
            for shard in self.shards.values():
                local = shard.local
                if local is not None and not local.alive:
                    self.governor.note_death(shard.name, local.spawns)
                if not shard.breaker.is_open:
                    continue
                if self.governor.is_parked(shard.name):
                    continue
                if local is not None and not local.alive \
                        and self.config.respawn:
                    if not self.governor.may_respawn(shard.name):
                        continue
                    try:
                        host, port = await loop.run_in_executor(
                            None, local.spawn)
                    except WorkerError:
                        shard.breaker.record_failure()
                        continue
                    shard.link.set_address(host, port)
                    self.respawns += 1
                if not shard.breaker.allow_probe():
                    continue
                try:
                    await shard.link.call_raw(ping, timeout=5.0)
                except WorkerError:
                    shard.breaker.record_failure()
                else:
                    shard.breaker.record_success()
                    shard.heals += 1
                    self.governor.note_settled(shard.name)

    # ------------------------------------------------------------------
    # front door
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One client connection: the daemon's line loop, async.

        Requests on one connection are handled in order (same semantics
        as the daemon's per-connection thread); concurrency comes from
        concurrent connections.  Oversized lines get a structured error
        and the stream resyncs at the next newline, exactly like the
        threaded daemon.

        Dispatch races against the connection itself: the handler keeps
        one read pending while a request is in flight, so a client that
        disconnects mid-request *cancels* the dispatch — its admission
        token is released in ``_route``'s ``finally`` and any in-flight
        worker future is abandoned (the link's FIFO guard discards the
        late response) — instead of the abandoned query holding fleet
        capacity until a timeout.
        """
        max_bytes = self.config.server.max_request_bytes
        buf = b""
        discarding = False
        too_large = protocol.encode(protocol.err(
            None, protocol.REQUEST_TOO_LARGE,
            f"request line exceeds {max_bytes} bytes",
            {"max_request_bytes": max_bytes}))
        read_task: Optional[asyncio.Task] = None
        dispatch_task: Optional[asyncio.Task] = None
        try:
            while True:
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if discarding:
                        discarding = False
                        continue
                    if not line.strip():
                        continue
                    if len(line) > max_bytes:
                        writer.write(too_large)
                        await writer.drain()
                        continue
                    dispatch_task = asyncio.ensure_future(
                        self.dispatch_line(line))
                    while not dispatch_task.done():
                        # Read-ahead doubles as disconnect detection,
                        # but stops once the buffer is oversized — the
                        # flood waits (backpressure) for the in-flight
                        # response rather than growing memory.
                        if read_task is None and len(buf) <= max_bytes:
                            read_task = asyncio.ensure_future(
                                reader.read(65536))
                        waiting = {dispatch_task}
                        if read_task is not None:
                            waiting.add(read_task)
                        await asyncio.wait(
                            waiting,
                            return_when=asyncio.FIRST_COMPLETED)
                        if read_task is not None and read_task.done():
                            chunk = read_task.result()
                            read_task = None
                            if not chunk:
                                # Client gone mid-request: abandon the
                                # dispatch; nobody is owed the answer.
                                dispatch_task.cancel()
                                try:
                                    await dispatch_task
                                except asyncio.CancelledError:
                                    pass
                                dispatch_task = None
                                return
                            buf += chunk
                    response = dispatch_task.result()
                    dispatch_task = None
                    writer.write(response)
                    await writer.drain()
                if not discarding and len(buf) > max_bytes:
                    writer.write(too_large)
                    await writer.drain()
                    buf = b""
                    discarding = True
                if read_task is None:
                    read_task = asyncio.ensure_future(
                        reader.read(65536))
                chunk = await read_task
                read_task = None
                if not chunk:
                    return
                buf += chunk
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            # Loop teardown mid-connection (shutdown path): end the
            # handler quietly, the front server is already closed.
            return
        finally:
            for task in (read_task, dispatch_task):
                if task is not None and not task.done():
                    task.cancel()
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    async def dispatch_line(self, line: bytes) -> bytes:
        """One wire frame in, one wire frame out (the coordinator's
        analogue of ``AliasServer.handle_line``)."""
        request_id: Any = None
        try:
            request = protocol.decode(line)
            request_id = request.get("id")
            request_id, method, params = \
                protocol.validate_request(request)
            deadline = protocol.request_deadline(request)
        except RequestError as exc:
            self._errors += 1
            return protocol.encode(protocol.err(
                request_id, exc.code, str(exc), exc.data))
        self._method_count[method] = \
            self._method_count.get(method, 0) + 1
        budget = protocol.remaining(deadline)
        if budget is not None and budget <= 0:
            # Expired before routing even starts: shed, don't route.
            return self._shed(request_id, deadline)
        if self._draining and method not in ("stats", "fleet_status"):
            self._errors += 1
            return protocol.encode(protocol.err(
                request_id, protocol.SHUTTING_DOWN,
                "coordinator is shutting down"))
        if method in _LOCAL_METHODS:
            return await self._handle_local(request_id, method)
        return await self._route(request, request_id, method, params,
                                 deadline=deadline)

    def _shed(self, request_id: Any, deadline: float) -> bytes:
        self._errors += 1
        self.deadline_sheds += 1
        return protocol.encode(protocol.deadline_err(
            request_id, deadline, "coordinator"))

    # ------------------------------------------------------------------
    # local methods
    # ------------------------------------------------------------------
    async def _handle_local(self, request_id: Any, method: str) -> bytes:
        if method == "ping":
            result: Any = {"pong": True, "role": "coordinator",
                           "protocol": PROTOCOL_VERSION,
                           "pid": os.getpid(),
                           "workers": len(self.shards)}
        elif method == "fleet_status":
            result = self.fleet_status()
        elif method == "stats":
            result = await self._aggregate_stats()
        else:  # shutdown
            self.request_shutdown()
            result = {"shutting_down": True}
        return protocol.encode(protocol.ok(request_id, result))

    def fleet_status(self) -> Dict[str, Any]:
        files = {}
        for path, rs in self._routing.items():
            shares = {node: 0 for node in self.ring.nodes()}
            for fp in rs.fingerprints:
                node = rs.homes.get(fp) or self.ring.node_for(fp)
                if node:
                    shares[node] += 1
            files[path] = {
                "clusters": len(rs.fingerprints),
                "file_key_home": rs.homes.get(rs.file_key)
                or self.ring.node_for(rs.file_key),
                "shares": shares,
            }
        workers = {}
        for name, shard in sorted(self.shards.items()):
            status = shard.status()
            status["respawn"] = self.governor.status(name)
            workers[name] = status
        out = {
            "role": "coordinator",
            "protocol": PROTOCOL_VERSION,
            "address": self.address,
            "draining": self._draining,
            "uptime_seconds": time.time() - self.started,
            "ring": {"nodes": self.ring.nodes(),
                     "replicas": self.ring.replicas},
            "workers": workers,
            "admission": self.admission.stats(),
            "requests": dict(sorted(self._method_count.items())),
            "errors": self._errors,
            "reroutes": self.reroutes,
            "respawns": self.respawns,
            "deadline_sheds": self.deadline_sheds,
            "hedging": {
                "enabled": self.config.hedge,
                "issued": self.hedges,
                "won": self.hedges_won,
                "eligible": self._hedge_eligible,
                "rate": (self.hedges / self._hedge_eligible
                         if self._hedge_eligible else 0.0),
                "delay": self._hedge_delay(),
            },
            "files": files,
        }
        if self.journal is not None:
            journal = self.journal.stats()
            if self.recovered:
                journal["recovered"] = self.recovered
            out["journal"] = journal
        return out

    async def _aggregate_stats(self) -> Dict[str, Any]:
        async def one(shard: _Shard) -> Tuple[str, Any]:
            frame = protocol.encode({"id": "fleet-stats",
                                     "method": "stats",
                                     "v": PROTOCOL_VERSION})
            try:
                raw = await shard.link.call_raw(frame, timeout=30.0)
                return shard.name, protocol.decode(raw).get("result")
            except (WorkerError, RequestError) as exc:
                return shard.name, {"error": str(exc)}

        pairs = await asyncio.gather(
            *[one(s) for s in self.shards.values()])
        return {
            "role": "coordinator",
            "protocol": PROTOCOL_VERSION,
            "coordinator": {
                "uptime_seconds": time.time() - self.started,
                "requests": dict(sorted(self._method_count.items())),
                "errors": self._errors,
                "reroutes": self.reroutes,
                "respawns": self.respawns,
                "admission": self.admission.stats(),
            },
            "workers": dict(sorted(pairs)),
        }

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _routing_state(self, path: str) -> Optional[RoutingState]:
        """The (possibly rebuilt) routing state for ``path``; ``None``
        when the file cannot be parsed — the request still routes (by a
        path-derived key) so the *worker* produces the same structured
        error a single daemon would."""
        lock = self._routing_locks.setdefault(path, asyncio.Lock())
        async with lock:
            rs = self._routing.get(path)
            if rs is not None and not rs.stale():
                self._routing.move_to_end(path)
                return rs
            loop = asyncio.get_event_loop()
            try:
                rs = await loop.run_in_executor(
                    None, RoutingState.build, path,
                    self.config.server)
            except (ReproError, OSError, RequestError):
                self._routing.pop(path, None)
                return None
            rs.assign_homes(self.ring, self.config.balance_epsilon,
                            observed=self._query_counts.get(path))
            if self.journal is not None:
                self.journal.record_file(path)
            self._routing[path] = rs
            self._routing.move_to_end(path)
            while len(self._routing) > self.config.server.max_files:
                dropped, _ = self._routing.popitem(last=False)
                self._routing_locks.pop(dropped, None)
            return rs

    async def _shard_key(self, method: str,
                         params: Dict[str, Any]) -> Tuple[str,
                                                          Optional[str]]:
        """``(key, home)`` for a request: ``home`` is the bounded-load
        placement's pick when the key belongs to a routed file, ``None``
        when only the pure ring home applies (fileless or unparseable
        requests)."""
        file_param = params.get("file")
        if not isinstance(file_param, str) or not file_param:
            # Fileless or malformed: deterministic key so the worker's
            # own validation error is served consistently.
            return f"method:{method}", None
        path = os.path.abspath(file_param)
        if method == "invalidate":
            # Drop our map too — the file's cluster keys are about to
            # change; rebuilt lazily on the next routed query.  The
            # journal forgets the weights with the keys (they name
            # fingerprints that no longer exist).
            self._routing.pop(path, None)
            self._query_counts.pop(path, None)
            self._weight_dirty.pop(path, None)
            if self.journal is not None:
                self.journal.forget_file(path)
        rs = await self._routing_state(path)
        if rs is None:
            return "path:" + path, None
        pointer_param = _POINTER_PARAM.get(method)
        if pointer_param is not None:
            name = params.get(pointer_param)
            if isinstance(name, str) and name:
                key = rs.key_for_pointer(name)
                if key is not None:
                    self._note_query(path, key)
                    return key, rs.homes.get(key)
        self._note_query(path, rs.file_key)
        return rs.file_key, rs.homes.get(rs.file_key)

    def _note_query(self, path: str, key: str) -> None:
        """Count one query against ``path``'s ``key``; journal the
        file's counts every ``weights_flush_every`` hits so a restarted
        coordinator re-places keys by observed traffic."""
        counts = self._query_counts.setdefault(path, {})
        counts[key] = counts.get(key, 0) + 1
        if self.journal is None:
            return
        dirty = self._weight_dirty.get(path, 0) + 1
        if dirty >= self.config.weights_flush_every:
            self._weight_dirty[path] = 0
            self.journal.record_weights(path, counts)
        else:
            self._weight_dirty[path] = dirty

    def _call_timeout(self, budget: Optional[float]) -> float:
        """The worker-call timeout: the configured bound, tightened to
        the request's remaining budget (plus a small grace so the
        worker's own deadline shed — a valid, structured answer —
        normally wins the race against our timer)."""
        timeout = self.config.worker_timeout
        if budget is not None:
            timeout = min(timeout, budget + 0.05)
        return timeout

    def _hedge_delay(self) -> Optional[float]:
        """How long a warm query may sit on its home shard before a
        hedge fires: the p95 of recent primary latencies, floored at
        ``hedge_min_delay``; ``None`` until enough observations."""
        lat = sorted(self._latencies)
        if len(lat) < self.config.hedge_min_observations:
            return None
        p95 = lat[min(len(lat) - 1, int(0.95 * len(lat)))]
        return max(self.config.hedge_min_delay, p95)

    def _hedge_allowed(self) -> bool:
        """Rate cap: hedges issued stay within ``hedge_max_fraction``
        of hedge-eligible traffic."""
        return (self.hedges + 1) <= (self.config.hedge_max_fraction
                                     * self._hedge_eligible)

    async def _call_hedged(self, primary: "_Shard", pref: List[str],
                           frame: bytes, timeout: float,
                           request_id: Any
                           ) -> Tuple[bytes, str, bool]:
        """One primary call with tail hedging: if the primary sits past
        the hedge delay, duplicate the frame to the first healthy ring
        successor; first answer wins and the loser is cancelled (safe —
        the link's FIFO guard discards an abandoned future's late
        response without misaligning the connection).

        Returns ``(raw, winner_name, hedged_won)``.  Raises
        :class:`WorkerError` only when every issued call failed;
        breaker accounting for *failed* calls happens here (a merely
        slow, cancelled loser is not a failure).
        """
        self._hedge_eligible += 1
        task = asyncio.ensure_future(
            primary.link.call_raw(frame, timeout=timeout,
                                  expect_id=request_id))
        delay = self._hedge_delay()
        t0 = time.monotonic()
        if delay is not None:
            try:
                raw = await asyncio.wait_for(asyncio.shield(task), delay)
                self._latencies.append(time.monotonic() - t0)
                return raw, primary.name, False
            except asyncio.TimeoutError:
                pass
            except asyncio.CancelledError:
                # The caller (a disconnected client) is gone: the
                # shield kept the task alive through wait_for, so
                # cancel it explicitly before propagating.
                task.cancel()
                raise
            except WorkerError:
                primary.breaker.record_failure()
                raise
        else:
            # Not enough latency history yet: plain call, observe it.
            try:
                raw = await task
            except WorkerError:
                primary.breaker.record_failure()
                raise
            self._latencies.append(time.monotonic() - t0)
            return raw, primary.name, False
        hedge_shard = None
        if self._hedge_allowed():
            for name in pref[1:]:
                candidate = self.shards.get(name)
                if candidate is not None \
                        and not candidate.breaker.is_open:
                    hedge_shard = candidate
                    break
        if hedge_shard is None:
            # Capped out (or nowhere to hedge): ride the primary.
            try:
                raw = await task
            except WorkerError:
                primary.breaker.record_failure()
                raise
            self._latencies.append(time.monotonic() - t0)
            return raw, primary.name, False
        self.hedges += 1
        hedge_task = asyncio.ensure_future(
            hedge_shard.link.call_raw(frame, timeout=timeout,
                                      expect_id=request_id))
        tasks = {task: primary, hedge_task: hedge_shard}
        pending = set(tasks)
        last_error: Optional[WorkerError] = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED)
                for finished in done:
                    shard = tasks[finished]
                    try:
                        raw = finished.result()
                    except WorkerError as exc:
                        shard.breaker.record_failure()
                        last_error = exc
                        continue
                    if finished is task:
                        self._latencies.append(time.monotonic() - t0)
                        return raw, primary.name, False
                    self.hedges_won += 1
                    return raw, hedge_shard.name, True
            raise last_error or WorkerError("hedged call failed")
        finally:
            for leftover in pending:
                leftover.cancel()

    async def _route(self, request: Dict[str, Any], request_id: Any,
                     method: str, params: Dict[str, Any],
                     deadline: Optional[float] = None) -> bytes:
        key, placed = await self._shard_key(method, params)
        budget = protocol.remaining(deadline)
        if budget is not None and budget <= 0:
            # Expired while the routing state was (re)built — the
            # coordinator's queue time — so shed before touching a
            # worker.
            return self._shed(request_id, deadline)
        pref = self.ring.preference(key)
        if placed is not None and placed in self.shards \
                and pref and pref[0] != placed:
            # Bounded-load placement moved this key off its arc home;
            # reroutes still walk the ring's successor order.
            pref = [placed] + [n for n in pref if n != placed]
        home = pref[0]
        try:
            self.admission.admit(home)
        except AdmissionError as exc:
            self._errors += 1
            return protocol.encode(protocol.err(
                request_id, exc.code, str(exc), exc.data))
        stamped = dict(request)
        stamped["v"] = PROTOCOL_VERSION
        frame = protocol.encode(stamped)
        last_error: Optional[Exception] = None
        try:
            for i, name in enumerate(pref):
                shard = self.shards[name]
                if shard.breaker.is_open:
                    last_error = last_error or WorkerError(
                        f"shard {name} circuit breaker is open")
                    continue
                budget = protocol.remaining(deadline)
                if budget is not None and budget <= 0:
                    return self._shed(request_id, deadline)
                timeout = self._call_timeout(budget)
                hedged = False
                try:
                    if i == 0 and self.config.hedge:
                        raw, winner, hedged = await self._call_hedged(
                            shard, pref, frame, timeout, request_id)
                    else:
                        raw = await shard.link.call_raw(
                            frame, timeout=timeout,
                            expect_id=request_id)
                        winner = name
                except WorkerError as exc:
                    if protocol.remaining(deadline) is not None \
                            and protocol.remaining(deadline) <= 0:
                        # The budget elapsed, not the worker's fault:
                        # shed without blaming the shard's breaker
                        # (``_call_hedged`` records real failures
                        # itself before raising).
                        return self._shed(request_id, deadline)
                    if not (i == 0 and self.config.hedge):
                        shard.breaker.record_failure()
                    last_error = exc
                    continue
                self.shards[winner].breaker.record_success()
                if i == 0 and not hedged \
                        and not self.config.envelope_all:
                    # Fast path: the worker's bytes, verbatim.
                    return raw
                if i > 0:
                    self.reroutes += 1
                    self.shards[winner].rerouted_in += 1
                    self.shards[home].rerouted_out += 1
                env = protocol.envelope(
                    winner, key=key, rerouted=i > 0,
                    home=home if (i > 0 or hedged) else None,
                    hedged=hedged)
                response = protocol.decode(raw)
                return protocol.encode(
                    protocol.with_envelope(response, env))
            self._errors += 1
            return protocol.encode(protocol.err(
                request_id, protocol.SHARD_UNAVAILABLE,
                f"no worker can serve shard key {key[:16]}…: "
                f"{last_error}",
                {"key": key, "tried": pref,
                 "last_error": str(last_error)}))
        finally:
            self.admission.release(home)

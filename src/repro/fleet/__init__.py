"""Fleet mode: one coordinator, N alias-daemon workers, one protocol.

``repro fleet serve`` starts an asyncio front door that speaks the
PR-3 JSON-lines protocol and consistent-hash-routes each query — keyed
by cluster payload fingerprint — to the worker daemon whose caches are
warm for it.  See :mod:`repro.fleet.coordinator` for the full design:
routing, admission control, shard-level circuit breakers, rerouting
with tagged envelopes, and healing through the shared disk cache.
"""

from .admission import AdmissionController, AdmissionError
from .coordinator import FleetConfig, FleetCoordinator, RoutingState
from .journal import CoordinatorJournal
from .respawn import RespawnGovernor
from .ring import DEFAULT_REPLICAS, HashRing
from .worker import (
    LocalWorker,
    WorkerError,
    WorkerLink,
    WorkerTimeout,
    parse_worker_addr,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "CoordinatorJournal",
    "DEFAULT_REPLICAS",
    "FleetConfig",
    "FleetCoordinator",
    "HashRing",
    "RespawnGovernor",
    "LocalWorker",
    "RoutingState",
    "WorkerError",
    "WorkerLink",
    "WorkerTimeout",
    "parse_worker_addr",
]

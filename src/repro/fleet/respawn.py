"""Respawn pacing: exponential backoff and the crash-loop breaker.

PR 8's probe loop respawned a dead spawned worker as soon as it noticed
the corpse — correct for a one-off crash, pathological for a worker
that dies on arrival (a bad flag, a poisoned cache entry, an OOM-sized
file): the coordinator would burn a CPU hot-looping fork/exec while the
shard never actually serves.  :class:`RespawnGovernor` turns respawn
into a governed decision:

* consecutive deaths back off exponentially (``backoff * factor**n``,
  capped at ``max_backoff``), so a flapping worker costs less each
  round while a healthy restart is still immediate;
* ``threshold`` deaths inside a sliding ``window`` trip the crash-loop
  breaker: the worker is **parked** — never respawned again this run —
  and its shard stays rerouted (the shard breaker is already open, so
  the ring's successor order carries its keys), which is the fleet's
  "this machine is bad, stop feeding it" verdict;
* a spawn that *sticks* (the governor sees a success recorded after the
  worker served traffic) resets the consecutive count, so one bad
  night does not haunt the worker forever.

The clock is injectable so the unit tests drive the window and backoff
deterministically without sleeping.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict


class RespawnGovernor:
    """Per-worker respawn pacing with a crash-loop breaker."""

    def __init__(self, backoff: float = 0.5, factor: float = 2.0,
                 max_backoff: float = 30.0, window: float = 30.0,
                 threshold: int = 5,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.backoff = backoff
        self.factor = factor
        self.max_backoff = max_backoff
        self.window = window
        self.threshold = threshold
        self._clock = clock
        self._deaths: Dict[str, Deque[float]] = {}
        self._consecutive: Dict[str, int] = {}
        self._next_allowed: Dict[str, float] = {}
        self._seen_generation: Dict[str, int] = {}
        self._parked: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def note_death(self, name: str, generation: int) -> bool:
        """Record that worker ``name``'s spawn ``generation`` died.
        Idempotent per generation (the probe loop polls, the governor
        counts each corpse once); returns True when this call newly
        recorded a death."""
        if self._seen_generation.get(name) == generation:
            return False
        self._seen_generation[name] = generation
        now = self._clock()
        deaths = self._deaths.setdefault(
            name, deque(maxlen=max(self.threshold, 1)))
        deaths.append(now)
        self._consecutive[name] = self._consecutive.get(name, 0) + 1
        recent = [t for t in deaths if now - t <= self.window]
        if len(recent) >= self.threshold and name not in self._parked:
            self._parked[name] = (
                f"{len(recent)} deaths in {self.window:.0f}s")
        delay = min(self.max_backoff,
                    self.backoff
                    * self.factor ** (self._consecutive[name] - 1))
        self._next_allowed[name] = now + delay
        return True

    def note_settled(self, name: str) -> None:
        """The latest spawn stuck (served real traffic): clear the
        consecutive-death streak so future backoff starts small.  A
        parked worker stays parked — serving one answer does not refute
        a crash loop."""
        self._consecutive[name] = 0

    def may_respawn(self, name: str) -> bool:
        """Is a respawn of ``name`` allowed right now?"""
        if name in self._parked:
            return False
        return self._clock() >= self._next_allowed.get(name, 0.0)

    def is_parked(self, name: str) -> bool:
        return name in self._parked

    # ------------------------------------------------------------------
    def status(self, name: str) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "deaths": len(self._deaths.get(name, ())),
            "consecutive": self._consecutive.get(name, 0),
            "parked": name in self._parked,
        }
        reason = self._parked.get(name)
        if reason is not None:
            out["parked_reason"] = reason
        wait = self._next_allowed.get(name, 0.0) - self._clock()
        if wait > 0 and name not in self._parked:
            out["next_respawn_in"] = wait
        return out

"""Admission control for the fleet front door: bounded queues,
structured back-pressure.

An overload policy has to pick a failure mode.  Unbounded queueing
picks the worst one — every client sees latency grow without bound and
the coordinator's memory grows with it — so the front door bounds both
the *global* number of admitted in-flight requests and the *per-shard*
pending count, and rejects the excess immediately with a structured
``OVERLOADED`` error carrying the live counts.  A rejected client
knows within one round-trip that it should back off; a stalled client
learns nothing, ever.

The controller is a plain counter object, not an asyncio primitive: it
never blocks (admission is a yes/no decision at arrival time, the
waiting happens in the worker links' bounded FIFOs), so it works
identically from the coordinator's event loop and from threaded tests.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from ..server.protocol import OVERLOADED, RequestError


class AdmissionError(RequestError):
    """A request rejected at the front door (maps to ``OVERLOADED``)."""

    def __init__(self, message: str, data: Optional[Dict[str, Any]] = None
                 ) -> None:
        super().__init__(OVERLOADED, message, data)


class AdmissionController:
    """Bounded in-flight accounting, global and per shard.

    ``admit(shard)`` either reserves a slot (caller must ``release`` it
    on every exit path) or raises :class:`AdmissionError`.  A rerouted
    request keeps its *home* shard's reservation: the bound tracks what
    was admitted for that key range, wherever it is being served.
    """

    def __init__(self, max_inflight: int = 1024,
                 max_per_shard: int = 256) -> None:
        # 0 is a legal bound: it rejects every routed request (local
        # methods like ping/fleet_status bypass admission), which is
        # the "pause the fleet" switch and what the back-pressure tests
        # exercise without needing to saturate real workers.
        if max_inflight < 0 or max_per_shard < 0:
            raise ValueError("admission bounds must be >= 0")
        self.max_inflight = max_inflight
        self.max_per_shard = max_per_shard
        self.inflight = 0
        self.peak_inflight = 0
        self.admitted = 0
        self.rejected = 0
        self._per_shard: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def admit(self, shard: str) -> None:
        with self._lock:
            if self.inflight >= self.max_inflight:
                self.rejected += 1
                raise AdmissionError(
                    f"overloaded: {self.inflight} requests in flight "
                    f"(limit {self.max_inflight})",
                    {"inflight": self.inflight,
                     "max_inflight": self.max_inflight})
            pending = self._per_shard.get(shard, 0)
            if pending >= self.max_per_shard:
                self.rejected += 1
                raise AdmissionError(
                    f"overloaded: shard {shard} has {pending} requests "
                    f"pending (limit {self.max_per_shard})",
                    {"shard": shard, "pending": pending,
                     "max_per_shard": self.max_per_shard})
            self.inflight += 1
            self.peak_inflight = max(self.peak_inflight, self.inflight)
            self.admitted += 1
            self._per_shard[shard] = pending + 1

    def release(self, shard: str) -> None:
        with self._lock:
            self.inflight = max(0, self.inflight - 1)
            pending = self._per_shard.get(shard, 0) - 1
            if pending <= 0:
                self._per_shard.pop(shard, None)
            else:
                self._per_shard[shard] = pending

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "inflight": self.inflight,
                "peak_inflight": self.peak_inflight,
                "max_inflight": self.max_inflight,
                "max_per_shard": self.max_per_shard,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "per_shard": dict(self._per_shard),
            }

"""Crash-safe coordinator state: an append-only checksummed journal.

A coordinator crash used to cost every piece of learned routing state:
which files the fleet serves (so a restart re-bootstraps them lazily,
one cold query at a time) and how query traffic actually distributes
over each file's cluster keys (the observed weights that refine the
bounded-load placement beyond the static pointers-per-cluster
estimate).  :class:`CoordinatorJournal` makes both durable with the
classic two-tier scheme:

* ``snapshot.json`` — the full state, written atomically (temp file,
  fsync, rename) so it is always either the old or the new snapshot,
  never a torn hybrid;
* ``journal.jsonl`` — appended records since the snapshot, one JSON
  object per line, each prefixed with its own CRC32.  Appends are not
  fsynced (losing the last few records to a power cut costs a little
  warmth, not correctness — every record is a cache of observations),
  but the checksum means a torn or corrupted tail is *detected* and
  replay stops at the last intact record instead of loading garbage.

Records are idempotent — ``file`` adds a path, ``weights`` replaces a
path's counts wholesale — so replaying a stale journal suffix over a
newer snapshot (the window between snapshot rename and journal
truncation) converges to the same state.  ``load`` folds the journal
into a fresh snapshot and truncates it, so corruption never accretes
and the journal stays short across restarts.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import Any, Dict, List, Optional, Tuple

SNAPSHOT = "snapshot.json"
JOURNAL = "journal.jsonl"


def _crc_line(body: bytes) -> bytes:
    return b"%08x %s\n" % (zlib.crc32(body) & 0xFFFFFFFF, body)


def _parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """The record a journal line carries, or ``None`` when the line is
    torn, corrupted, or fails its checksum."""
    parts = line.rstrip(b"\n").split(b" ", 1)
    if len(parts) != 2:
        return None
    crc, body = parts
    try:
        if int(crc, 16) != (zlib.crc32(body) & 0xFFFFFFFF):
            return None
        obj = json.loads(body)
    except ValueError:
        return None
    return obj if isinstance(obj, dict) else None


def _atomic_write(path: str, data: bytes) -> None:
    import tempfile
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".snapshot-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


class CoordinatorJournal:
    """Durable served-files + query-weights state for one coordinator."""

    def __init__(self, root: str, compact_every: int = 256) -> None:
        self.root = root
        self.compact_every = compact_every
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        #: Served file paths, in first-seen order.
        self.files: Dict[str, None] = {}
        #: path -> cluster key -> observed query count.
        self.weights: Dict[str, Dict[str, int]] = {}
        self._pending_lines = 0
        self.records = 0
        self.compactions = 0
        self.recovered_files = 0
        self.dropped_lines = 0

    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.root, SNAPSHOT)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, JOURNAL)

    def load(self) -> Tuple[List[str], Dict[str, Dict[str, int]]]:
        """Recover state: snapshot, then every intact journal record.
        The result is immediately re-snapshotted and the journal
        truncated, so recovery also repairs a torn tail."""
        with self._lock:
            self.files = {}
            self.weights = {}
            try:
                with open(self.snapshot_path, "rb") as handle:
                    snap = json.loads(handle.read())
                if isinstance(snap, dict):
                    for path in snap.get("files", ()):
                        if isinstance(path, str):
                            self.files[path] = None
                    weights = snap.get("weights", {})
                    if isinstance(weights, dict):
                        for path, counts in weights.items():
                            if isinstance(counts, dict):
                                self.weights[path] = {
                                    str(k): int(v)
                                    for k, v in counts.items()}
            except (OSError, ValueError):
                pass
            try:
                with open(self.journal_path, "rb") as handle:
                    for line in handle:
                        record = _parse_line(line)
                        if record is None:
                            # Torn/corrupt tail: everything before it
                            # is intact, nothing after is trusted.
                            self.dropped_lines += 1
                            break
                        self._apply(record)
            except OSError:
                pass
            self.recovered_files = len(self.files)
            self._compact_locked()
            return list(self.files), {p: dict(c)
                                      for p, c in self.weights.items()}

    def _apply(self, record: Dict[str, Any]) -> None:
        kind = record.get("t")
        if kind == "file" and isinstance(record.get("path"), str):
            self.files[record["path"]] = None
        elif kind == "weights" and isinstance(record.get("path"), str) \
                and isinstance(record.get("counts"), dict):
            self.weights[record["path"]] = {
                str(k): int(v) for k, v in record["counts"].items()}

    # ------------------------------------------------------------------
    def record_file(self, path: str) -> None:
        """Note a newly served file (idempotent)."""
        with self._lock:
            if path in self.files:
                return
            self.files[path] = None
            self._append({"t": "file", "path": path})

    def record_weights(self, path: str, counts: Dict[str, int]) -> None:
        """Replace the observed query counts for ``path``'s keys."""
        with self._lock:
            self.weights[path] = dict(counts)
            self._append({"t": "weights", "path": path,
                          "counts": dict(counts)})

    def forget_file(self, path: str) -> None:
        """Drop a file (invalidate): its keys are about to change, so
        stale weights must not outlive them."""
        with self._lock:
            changed = self.files.pop(path, "absent") is None
            changed = bool(self.weights.pop(path, None)) or changed
            if changed:
                self._compact_locked()

    def _append(self, record: Dict[str, Any]) -> None:
        body = json.dumps(record, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        try:
            with open(self.journal_path, "ab") as handle:
                handle.write(_crc_line(body))
        except OSError:
            return
        self.records += 1
        self._pending_lines += 1
        if self._pending_lines >= self.compact_every:
            self._compact_locked()

    def _compact_locked(self) -> None:
        snap = json.dumps({"files": list(self.files),
                           "weights": self.weights},
                          sort_keys=True).encode("utf-8")
        try:
            _atomic_write(self.snapshot_path, snap)
            with open(self.journal_path, "wb"):
                pass
        except OSError:
            return
        self._pending_lines = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "root": self.root,
                "files": len(self.files),
                "weighted_files": len(self.weights),
                "records": self.records,
                "compactions": self.compactions,
                "recovered_files": self.recovered_files,
                "dropped_lines": self.dropped_lines,
            }
